#include "sim/mmm_sim.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "grid/metrics.hpp"
#include "plan/rebalance.hpp"
#include "support/check.hpp"

namespace pushpart {

namespace {

/// Splits the directed pair volumes into per-message chunks, sender-major.
std::vector<SimMessage> bulkMessages(const Partition& q, int chunksPerPair) {
  std::vector<SimMessage> out;
  const auto v = pairVolumes(q);
  for (Proc s : kAllProcs) {
    for (Proc r : kAllProcs) {
      if (s == r) continue;
      const std::int64_t volume = v[procSlot(s)][procSlot(r)];
      if (volume == 0) continue;
      for (int c = 0; c < chunksPerPair; ++c) {
        const std::int64_t lo = volume * c / chunksPerPair;
        const std::int64_t hi = volume * (c + 1) / chunksPerPair;
        if (hi > lo) out.push_back({s, r, hi - lo});
      }
    }
  }
  return out;
}

/// Directed volumes for one pivot step k: the pivot column of A and pivot
/// row of B reach every other owner of the receiving row/column.
std::vector<SimMessage> stepMessages(const Partition& q, int k) {
  std::vector<SimMessage> out;
  const int n = q.n();
  for (Proc s : kAllProcs) {
    for (Proc r : kAllProcs) {
      if (s == r) continue;
      std::int64_t volume = 0;
      for (int i = 0; i < n; ++i)
        if (q.at(i, k) == s && q.rowHas(r, i)) ++volume;  // A(i,k) pivots
      for (int j = 0; j < n; ++j)
        if (q.at(k, j) == s && q.colHas(r, j)) ++volume;  // B(k,j) pivots
      if (volume > 0) out.push_back({s, r, volume});
    }
  }
  return out;
}

struct CompLoads {
  double full[kNumProcs];       // all owned elements, N MACs each
  double overlap[kNumProcs];    // fully-local elements
  double remainder[kNumProcs];  // full − overlap
  double oneStep[kNumProcs];    // one MAC per owned element
  double maxFull = 0, maxOverlap = 0, maxRemainder = 0, maxStep = 0;
};

CompLoads computeLoads(const Partition& q, const Machine& m) {
  CompLoads loads{};
  const int n = q.n();
  for (Proc x : kAllProcs) {
    const auto xi = procSlot(x);
    const std::int64_t owned = q.count(x);
    const std::int64_t local = overlapElements(q, x);
    loads.full[xi] = m.computeSeconds(x, owned * n);
    loads.overlap[xi] = m.computeSeconds(x, local * n);
    loads.remainder[xi] = m.computeSeconds(x, (owned - local) * n);
    loads.oneStep[xi] = m.computeSeconds(x, owned);
    loads.maxFull = std::max(loads.maxFull, loads.full[xi]);
    loads.maxOverlap = std::max(loads.maxOverlap, loads.overlap[xi]);
    loads.maxRemainder = std::max(loads.maxRemainder, loads.remainder[xi]);
    loads.maxStep = std::max(loads.maxStep, loads.oneStep[xi]);
  }
  return loads;
}

/// Delivers `messages` strictly one after another (serial wire); returns the
/// final delivery instant.
double runSerial(EventQueue& events, Network& net,
                 const std::vector<SimMessage>& messages) {
  double last = 0.0;
  for (const SimMessage& msg : messages) {
    double delivered = last;
    net.send(msg, last, [&delivered](double t) { delivered = t; });
    events.run();
    last = delivered;
  }
  return last;
}

/// Issues all messages at t = 0 (NICs serialize per sender); returns the
/// instant the last one lands.
double runParallel(EventQueue& events, Network& net,
                   const std::vector<SimMessage>& messages) {
  double latest = 0.0;
  for (const SimMessage& msg : messages)
    net.send(msg, 0.0, [&latest](double t) { latest = std::max(latest, t); });
  events.run();
  return latest;
}

// --- Fault-aware phases ----------------------------------------------------

/// Aggregate verdict of one reliable communication phase.
struct PhaseOutcome {
  double done = 0.0;      ///< Last delivery or failure-detection instant.
  bool peerDead = false;  ///< Some transfer failed on a dead endpoint.
  bool abandoned = false;  ///< Some transfer ran out of retry attempts.
};

/// Reliable counterpart of runSerial: transfers go one after another, each
/// starting at the previous outcome (delivery or detection) instant.
PhaseOutcome runSerialReliable(EventQueue& events, Network& net,
                               const std::vector<SimMessage>& messages,
                               const RetryPolicy& policy, double startAt) {
  PhaseOutcome o;
  double last = startAt;
  for (const SimMessage& msg : messages) {
    TransferOutcome out;
    net.sendReliable(msg, last, policy,
                     [&out](const TransferOutcome& r) { out = r; });
    events.run();
    last = out.at;
    if (!out.delivered) (out.peerDead ? o.peerDead : o.abandoned) = true;
  }
  o.done = last;
  return o;
}

/// Reliable counterpart of runParallel: everything is issued at startAt.
PhaseOutcome runParallelReliable(EventQueue& events, Network& net,
                                 const std::vector<SimMessage>& messages,
                                 const RetryPolicy& policy, double startAt) {
  PhaseOutcome o;
  double latest = startAt;
  for (const SimMessage& msg : messages) {
    net.sendReliable(msg, startAt, policy, [&](const TransferOutcome& r) {
      latest = std::max(latest, r.at);
      if (!r.delivered) (r.peerDead ? o.peerDead : o.abandoned) = true;
    });
  }
  events.run();
  o.done = latest;
  return o;
}

/// The survivor with the higher relative speed (q-encoding order on ties) —
/// the natural checkpoint server for operand refetch.
Proc fastestSurvivor(Proc dead, const Ratio& ratio) {
  Proc best = Proc::P;
  bool have = false;
  for (Proc p : kAllProcs) {
    if (p == dead) continue;
    if (!have || ratio.speed(p) > ratio.speed(best)) {
      best = p;
      have = true;
    }
  }
  return best;
}

/// Delta-schedule volumes as per-pair chunked messages (bulk re-sync).
std::vector<SimMessage> deltaMessages(
    const std::array<std::array<std::int64_t, kNumProcs>, kNumProcs>& vols,
    int chunksPerPair) {
  std::vector<SimMessage> out;
  for (Proc s : kAllProcs) {
    for (Proc r : kAllProcs) {
      if (s == r) continue;
      const std::int64_t volume = vols[procSlot(s)][procSlot(r)];
      if (volume == 0) continue;
      for (int c = 0; c < chunksPerPair; ++c) {
        const std::int64_t lo = volume * c / chunksPerPair;
        const std::int64_t hi = volume * (c + 1) / chunksPerPair;
        if (hi > lo) out.push_back({s, r, hi - lo});
      }
    }
  }
  return out;
}

SimResult simulateIdeal(Algo algo, const Partition& q,
                        const SimOptions& options) {
  EventQueue events;
  Network net(events, options.machine, options.topology, options.star);
  const CompLoads loads = computeLoads(q, options.machine);

  SimResult result;
  switch (algo) {
    case Algo::kSCB: {
      const double commDone =
          runSerial(events, net, bulkMessages(q, options.chunksPerPair));
      result.commSeconds = commDone;
      result.compSeconds = loads.maxFull;
      result.execSeconds = commDone + loads.maxFull;
      break;
    }
    case Algo::kPCB: {
      const double commDone =
          runParallel(events, net, bulkMessages(q, options.chunksPerPair));
      result.commSeconds = commDone;
      result.compSeconds = loads.maxFull;
      result.execSeconds = commDone + loads.maxFull;
      break;
    }
    case Algo::kSCO: {
      const double commDone =
          runSerial(events, net, bulkMessages(q, options.chunksPerPair));
      result.commSeconds = commDone;
      result.overlapSeconds = loads.maxOverlap;
      result.compSeconds = loads.maxRemainder;
      result.execSeconds =
          std::max(commDone, loads.maxOverlap) + loads.maxRemainder;
      break;
    }
    case Algo::kPCO: {
      const double commDone =
          runParallel(events, net, bulkMessages(q, options.chunksPerPair));
      result.commSeconds = commDone;
      result.overlapSeconds = loads.maxOverlap;
      result.compSeconds = loads.maxRemainder;
      result.execSeconds =
          std::max(commDone, loads.maxOverlap) + loads.maxRemainder;
      break;
    }
    case Algo::kPIO: {
      // Block b's pivot data is exchanged while block b−1 is computed; block
      // b begins once both finish (Eq. 9's serialization, grouped by
      // options.pioBlockSize pivots — one message per (pair, block) so
      // larger blocks amortize the per-message latency α).
      PUSHPART_CHECK(options.pioBlockSize >= 1);
      const int n = q.n();
      double t = 0.0;
      int prevBlockSteps = 0;
      for (int k = 0; k < n; k += options.pioBlockSize) {
        const int blockEnd = std::min(n, k + options.pioBlockSize);
        // Merge the block's per-pivot volumes into one message per pair.
        std::array<std::array<std::int64_t, kNumProcs>, kNumProcs> vol{};
        for (int p = k; p < blockEnd; ++p)
          for (const SimMessage& msg : stepMessages(q, p))
            vol[procSlot(msg.from)][procSlot(msg.to)] += msg.elements;
        double delivered = t;
        for (Proc s : kAllProcs)
          for (Proc r : kAllProcs) {
            if (s == r || vol[procSlot(s)][procSlot(r)] == 0) continue;
            net.send({s, r, vol[procSlot(s)][procSlot(r)]}, t,
                     [&delivered](double at) {
                       delivered = std::max(delivered, at);
                     });
          }
        events.run();
        t = std::max(delivered, t + loads.maxStep * prevBlockSteps);
        prevBlockSteps = blockEnd - k;
      }
      t += loads.maxStep * prevBlockSteps;  // drain: compute the final block
      double nicBusy = 0.0;
      for (double b : net.stats().nicBusySeconds) nicBusy += b;
      result.commSeconds = nicBusy;
      result.compSeconds = loads.maxStep * n;
      result.execSeconds = t;
      break;
    }
  }
  result.network = net.stats();
  return result;
}

/// Fault-injected run: reliable transfers (timeout/backoff retransmission)
/// and, on processor death, degrade-to-survivors failover via
/// plan/rebalance.hpp. Post-death execution is modeled barrier-style — the
/// overlap algorithms lose their overlap once a failure is detected, a
/// documented simplification (DESIGN.md, "Fault model & recovery").
SimResult simulateFaulty(Algo algo, const Partition& q,
                         const SimOptions& options) {
  options.faults.validate();
  options.retry.validate();
  FaultInjector injector(options.faults);
  EventQueue events;
  Network net(events, options.machine, options.topology, options.star,
              &injector);
  const Machine& m = options.machine;
  const CompLoads loads = computeLoads(q, m);
  const int n = q.n();

  const bool hasDeath = options.faults.death.has_value();
  const Proc dead = hasDeath ? options.faults.death->proc : Proc::P;
  const double deathAt = hasDeath ? options.faults.death->at : 0.0;

  SimResult result;
  auto failAt = [&](double t) -> SimResult& {
    result.execSeconds = t;
    result.completed = false;
    result.network = net.stats();
    return result;
  };

  // Marks the failure detection and computes the failover partition for the
  // epoch starting at pivot kStar. Returns nullopt when recovery is off.
  auto startFailover = [&](double tDet, int kStar,
                           const Partition& cur) -> std::optional<RebalanceResult> {
    result.recovery.processorDied = true;
    result.recovery.deadProc = dead;
    result.recovery.deathDetectedAt = tDet;
    if (!options.rebalanceOnDeath) return std::nullopt;
    RebalanceResult reb = rebalanceOnDeath(cur, dead, m.ratio, kStar);
    result.recovery.failoverPivot = kStar;
    result.recovery.reassignedElements = reb.reassigned;
    result.recovery.failoverPlanVerified = reb.deltaPlanVerified;
    result.recovery.vocBefore = reb.vocBefore;
    result.recovery.vocAfter = reb.vocAfter;
    return reb;
  };

  // Checkpoint refetch: the fastest survivor re-serves the A and B panels
  // of every reassigned cell to the other gainer (its own share is local).
  auto refetchMessages = [&](const RebalanceResult& reb) {
    const Proc server = fastestSurvivor(dead, m.ratio);
    std::vector<SimMessage> msgs;
    for (Proc x : kAllProcs) {
      if (x == dead || x == server) continue;
      const std::int64_t panels = 2 * reb.gained[procSlot(x)];
      if (panels > 0) {
        msgs.push_back({server, x, panels});
        result.recovery.refetchedElements += panels;
      }
    }
    return msgs;
  };

  if (algo == Algo::kPIO) {
    PUSHPART_CHECK(options.pioBlockSize >= 1);
    Partition cur = q;
    CompLoads curLoads = loads;
    double t = 0.0;
    int prevBlockSteps = 0;
    bool failedOver = false;
    int k = 0;
    while (k < n) {
      if (hasDeath && !failedOver && t >= deathAt) {
        // Finish the owed previous-block computation, then fail over from
        // the current pivot: refetch the lost panels and let the remaining
        // loop iterations replay pivots [k, n) under the new partition.
        const double pending = t + curLoads.maxStep * prevBlockSteps;
        const double tDet =
            std::max(pending, deathAt + options.retry.timeoutSeconds);
        auto reb = startFailover(tDet, k, cur);
        if (!reb) return failAt(tDet);
        const PhaseOutcome rec = runParallelReliable(
            events, net, refetchMessages(*reb), options.retry, tDet);
        if (rec.abandoned || rec.peerDead) return failAt(rec.done);
        cur = std::move(reb->after);
        curLoads = computeLoads(cur, m);
        double maxCatchup = 0.0;
        for (Proc x : kAllProcs) {
          if (x == dead) continue;
          maxCatchup = std::max(
              maxCatchup, m.computeSeconds(x, reb->gained[procSlot(x)] * k));
        }
        result.recovery.recoverySeconds = (rec.done - tDet) + maxCatchup;
        result.completed = reb->deltaPlanVerified;
        t = rec.done + maxCatchup;
        prevBlockSteps = 0;
        failedOver = true;
        continue;
      }
      const int blockEnd = std::min(n, k + options.pioBlockSize);
      std::array<std::array<std::int64_t, kNumProcs>, kNumProcs> vol{};
      for (int p = k; p < blockEnd; ++p)
        for (const SimMessage& msg : stepMessages(cur, p))
          vol[procSlot(msg.from)][procSlot(msg.to)] += msg.elements;
      PhaseOutcome block{t, false, false};
      double latest = t;
      for (Proc s : kAllProcs)
        for (Proc r : kAllProcs) {
          if (s == r || vol[procSlot(s)][procSlot(r)] == 0) continue;
          net.sendReliable({s, r, vol[procSlot(s)][procSlot(r)]}, t,
                           options.retry, [&](const TransferOutcome& out) {
                             latest = std::max(latest, out.at);
                             if (!out.delivered)
                               (out.peerDead ? block.peerDead
                                             : block.abandoned) = true;
                           });
        }
      events.run();
      block.done = latest;
      if (block.abandoned) return failAt(block.done);
      if (block.peerDead) {
        // Death detected mid-block; re-enter the loop so the failover
        // branch fires and this block is re-sent under the new partition.
        PUSHPART_CHECK(!failedOver);
        t = std::max(t, block.done);
        continue;
      }
      t = std::max(block.done, t + curLoads.maxStep * prevBlockSteps);
      prevBlockSteps = blockEnd - k;
      k = blockEnd;
    }
    t += curLoads.maxStep * prevBlockSteps;
    if (hasDeath && !failedOver && deathAt < t) {
      // Death during the final drain: all pivot data was exchanged, but the
      // dead processor's C contributions are lost. Failover at pivot n:
      // empty delta schedule, full catch-up for the reassigned cells.
      const double tDet = deathAt + options.retry.timeoutSeconds;
      auto reb = startFailover(tDet, n, q);
      if (!reb) return failAt(tDet);
      const PhaseOutcome rec = runParallelReliable(
          events, net, refetchMessages(*reb), options.retry,
          std::max(tDet, t));
      if (rec.abandoned || rec.peerDead) return failAt(rec.done);
      double maxCatchup = 0.0;
      for (Proc x : kAllProcs) {
        if (x == dead) continue;
        maxCatchup = std::max(
            maxCatchup, m.computeSeconds(x, reb->gained[procSlot(x)] * n));
      }
      result.recovery.recoverySeconds = (rec.done - tDet) + maxCatchup;
      result.completed = reb->deltaPlanVerified;
      t = rec.done + maxCatchup;
    }
    double nicBusy = 0.0;
    for (double b : net.stats().nicBusySeconds) nicBusy += b;
    result.commSeconds = nicBusy;
    result.compSeconds = curLoads.maxStep * n;
    result.execSeconds = t;
    result.network = net.stats();
    return result;
  }

  // --- Bulk algorithms (SCB/PCB/SCO/PCO) --------------------------------
  const bool serialFamily = algo == Algo::kSCB || algo == Algo::kSCO;
  const bool overlapFamily = algo == Algo::kSCO || algo == Algo::kPCO;
  const auto messages = bulkMessages(q, options.chunksPerPair);
  const PhaseOutcome comm =
      serialFamily
          ? runSerialReliable(events, net, messages, options.retry, 0.0)
          : runParallelReliable(events, net, messages, options.retry, 0.0);
  result.commSeconds = comm.done;
  if (comm.abandoned) return failAt(comm.done);

  const double idealFinish =
      overlapFamily ? std::max(comm.done, loads.maxOverlap) + loads.maxRemainder
                    : comm.done + loads.maxFull;

  if (!hasDeath || (!comm.peerDead && deathAt >= idealFinish)) {
    if (overlapFamily) {
      result.overlapSeconds = loads.maxOverlap;
      result.compSeconds = loads.maxRemainder;
    } else {
      result.compSeconds = loads.maxFull;
    }
    result.execSeconds = idealFinish;
    result.network = net.stats();
    return result;
  }

  // --- Failover ----------------------------------------------------------
  // Detection: during the communication phase the failed transfers already
  // pushed comm.done past the ack timeout; during computation the failure
  // detector fires timeoutSeconds after the death.
  const double tDet =
      std::max(comm.done, deathAt + options.retry.timeoutSeconds);
  // Progress pivot under the barrier view of the compute phase.
  int kStar = n;
  if (loads.maxFull > 0.0) {
    const double f =
        std::clamp((tDet - comm.done) / loads.maxFull, 0.0, 1.0);
    kStar = std::min(n, static_cast<int>(static_cast<double>(n) * f));
  }
  auto reb = startFailover(tDet, kStar, q);
  if (!reb) return failAt(tDet);

  // Recovery traffic: checkpoint refetch plus the failover epoch's delta
  // schedule (bulk algorithms pre-delivered under the old ownership, so the
  // epoch's volumes are re-synced in full among the survivors).
  std::vector<SimMessage> recMessages = refetchMessages(*reb);
  for (SimMessage msg :
       deltaMessages(planVolumes(reb->deltaPlan), options.chunksPerPair))
    recMessages.push_back(msg);
  const PhaseOutcome rec =
      serialFamily
          ? runSerialReliable(events, net, recMessages, options.retry, tDet)
          : runParallelReliable(events, net, recMessages, options.retry, tDet);
  result.commSeconds = rec.done;
  if (rec.abandoned || rec.peerDead) return failAt(rec.done);

  // Survivors catch the reassigned cells up over the finished pivots, then
  // everyone computes the failover epoch.
  double maxCatchup = 0.0;
  double maxComp = 0.0;
  for (Proc x : kAllProcs) {
    if (x == dead) continue;
    const double catchup =
        m.computeSeconds(x, reb->gained[procSlot(x)] * kStar);
    const double rest =
        m.computeSeconds(x, reb->after.count(x) * (n - kStar));
    maxCatchup = std::max(maxCatchup, catchup);
    maxComp = std::max(maxComp, catchup + rest);
  }
  result.recovery.recoverySeconds = (rec.done - tDet) + maxCatchup;
  result.compSeconds = maxComp;
  result.execSeconds = rec.done + maxComp;
  result.completed = reb->deltaPlanVerified;
  result.network = net.stats();
  return result;
}

/// One PhaseSample for a completed run: per processor the MACs it owned and
/// the model-charged busy time, with the fault plan's stall windows and a
/// mid-run death marked. The emitter reports, it never smooths — estimation
/// is the consumer's job (src/adapt).
void emitRunTelemetry(const Partition& q, const SimOptions& options,
                      const SimResult& result) {
  PhaseSample sample;
  sample.at = result.execSeconds;
  for (Proc x : kAllProcs) {
    NodeSample& node = sample.node(x);
    node.proc = x;
    if (result.recovery.processorDied && result.recovery.deadProc == x) {
      node.dead = true;  // nothing to measure: its partial results are lost
      continue;
    }
    node.units = q.count(x) * q.n();
    node.busySeconds = options.machine.computeSeconds(x, node.units);
    for (const NicStall& stall : options.faults.stalls)
      if (stall.proc == x && stall.at < result.execSeconds)
        node.stalled = true;
  }
  options.telemetry(sample);
}

}  // namespace

SimResult simulateMMM(Algo algo, const Partition& q,
                      const SimOptions& options) {
  PUSHPART_CHECK(options.chunksPerPair >= 1);
  PUSHPART_CHECK_MSG(options.machine.ratio.valid(),
                     "invalid ratio " << options.machine.ratio.str());
  SimResult result = options.faults.enabled() ? simulateFaulty(algo, q, options)
                                              : simulateIdeal(algo, q, options);
  if (options.telemetry) emitRunTelemetry(q, options, result);
  return result;
}

}  // namespace pushpart
