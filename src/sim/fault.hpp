// Deterministic fault injection for the cluster simulator.
//
// The paper's analysis (§II, Eqs. 2–9) assumes a perfect network and three
// always-alive processors; a production cluster offers neither. A FaultPlan
// is a declarative, seed-driven description of what goes wrong during one
// run: messages dropped with a fixed probability, latency spikes that
// inflate the Hockney α/β over time windows, transient NIC stalls, and the
// permanent death of one processor at a given instant. A FaultInjector
// executes the plan: every random decision flows through one xoshiro stream
// seeded from the plan, so a (plan, partition, options) triple fully
// determines a simulated run — faults are reproducible, not flaky.
//
// The RetryPolicy describes how the transfer layer reacts to loss: a
// sender that has not seen an acknowledgement `timeoutSeconds` after its
// message went out retransmits, waiting a bounded exponential backoff
// (with deterministic jitter from the same stream) between attempts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "grid/proc.hpp"
#include "support/rng.hpp"

namespace pushpart {

/// Multiplicative Hockney inflation over the window [begin, end): a message
/// whose hop starts inside the window pays alphaFactor·α + betaFactor·β·M.
struct LatencySpike {
  double begin = 0.0;
  double end = 0.0;
  double alphaFactor = 1.0;
  double betaFactor = 1.0;
};

/// Transient NIC outage: processor `proc` can start no outbound hop during
/// [at, at + seconds); hops ready inside the window start at its end.
struct NicStall {
  Proc proc = Proc::P;
  double at = 0.0;
  double seconds = 0.0;
};

/// Permanent processor death: `proc` neither sends, receives nor computes
/// from time `at` onward. Its partial results are lost.
struct ProcDeath {
  Proc proc = Proc::P;
  double at = 0.0;
};

/// Declarative fault schedule for one simulated run. Default-constructed
/// plans are inert: enabled() is false and the simulator takes its exact
/// fault-free code path (bit-identical results).
struct FaultPlan {
  /// Seed of the fault stream (message-drop draws and backoff jitter).
  std::uint64_t seed = 1;
  /// Per-hop probability that a message is lost in transit. The hop still
  /// occupies the sender's NIC — the bytes go out, nobody receives them.
  double dropProbability = 0.0;
  std::vector<LatencySpike> spikes;
  std::vector<NicStall> stalls;
  std::optional<ProcDeath> death;

  bool enabled() const {
    return dropProbability > 0.0 || !spikes.empty() || !stalls.empty() ||
           death.has_value();
  }

  /// Throws CheckError on out-of-range probabilities, inverted spike
  /// windows, negative times or non-positive inflation factors.
  void validate() const;
};

/// How backoffBeforeRetry spreads the delays of colliding retriers.
enum class JitterMode {
  /// Relative jitter: the bounded exponential delay scaled by a uniform
  /// factor in [1 − jitterFraction, 1 + jitterFraction]. Cheap and mildly
  /// spreading, but retriers that started together stay clustered around
  /// the same exponential schedule.
  kRelative = 0,
  /// Decorrelated jitter: delay r is uniform in
  /// [backoffSeconds, 3 · delay_{r−1}], capped at backoffMaxSeconds (with
  /// delay_0 = backoffSeconds). Each draw ranges over the whole interval
  /// from base to thrice the previous delay, so two retriers on the same
  /// schedule rapidly drift apart instead of colliding every round.
  kDecorrelated,
};

constexpr const char* jitterModeName(JitterMode m) {
  switch (m) {
    case JitterMode::kRelative: return "relative";
    case JitterMode::kDecorrelated: return "decorrelated";
  }
  return "?";
}

/// Retransmission knobs for reliable transfers. Backoff before retry r
/// (r = 1 is the first retransmit) is, in kRelative mode,
///   min(backoffSeconds · backoffFactor^(r−1), backoffMaxSeconds)
/// scaled by a uniform jitter in [1 − jitterFraction, 1 + jitterFraction];
/// kDecorrelated mode replaces the fixed schedule entirely (see JitterMode).
struct RetryPolicy {
  int maxAttempts = 8;            ///< Total attempts before giving up.
  double timeoutSeconds = 1e-3;   ///< Ack wait before declaring a loss.
  double backoffSeconds = 1e-4;   ///< Backoff before the second attempt.
  double backoffFactor = 2.0;     ///< Exponential growth per retry.
  double backoffMaxSeconds = 0.1; ///< Backoff ceiling (bounded backoff).
  double jitterFraction = 0.1;    ///< ± relative jitter per backoff draw.
  JitterMode jitterMode = JitterMode::kRelative;

  /// Throws CheckError on non-positive attempts/timeouts or jitter outside
  /// [0, 1).
  void validate() const;

  /// Backoff delay before retry number `retry` (>= 1), jittered from `rng`.
  double backoffBeforeRetry(int retry, Rng& rng) const;
};

// ---------------------------------------------------------------------------
// Cluster-scale faults: the oracle cluster (src/cluster) runs N simulated
// serving nodes behind a router, and its failure modes are node-level rather
// than processor-level — whole nodes die and rejoin, links partition, nodes
// flap up and down, or merely slow down. A ClusterFaultPlan is the same idea
// as a FaultPlan one layer up: a declarative, seed-driven scenario whose
// every random decision (heartbeat drops, retry jitter) flows through the
// same FaultInjector stream machinery, so a (plan, workload, options) triple
// fully determines a drill — kill/partition/flap/slow scenarios are
// replayable, not flaky.

/// Node `node` dies (process crash: its in-memory state is lost) at `at`.
/// With `rejoinAt` set the node restarts cold at that instant and must be
/// rebalanced back in; without it the death is permanent.
struct NodeKill {
  int node = 0;
  double at = 0.0;
  std::optional<double> rejoinAt;
};

/// Symmetric link cut between endpoints `a` and `b` over [begin, end).
/// Endpoint kRouterEndpoint (-1) is the router/client side, so a partition
/// {kRouterEndpoint, n} isolates node n from traffic while it stays alive.
struct LinkPartition {
  int a = 0;
  int b = 0;
  double begin = 0.0;
  double end = 0.0;
};

/// Node `node` flaps over [begin, end): starting up, it alternates up for
/// `period · upFraction` then down for the rest of each period. Flap-down is
/// an outage (unreachable, heartbeats lost), not a crash — state survives.
struct NodeFlap {
  int node = 0;
  double begin = 0.0;
  double end = 0.0;
  double period = 1.0;
  double upFraction = 0.5;
};

/// Node `node` serves `factor`× slower over [begin, end) — responses arrive,
/// late. Overlapping windows multiply.
struct SlowNode {
  int node = 0;
  double begin = 0.0;
  double end = 0.0;
  double factor = 2.0;
};

/// The router/client endpoint in LinkPartition entries.
inline constexpr int kRouterEndpoint = -1;

/// Declarative node-level fault schedule for one cluster drill.
/// Default-constructed plans are inert: enabled() is false and the cluster
/// behaves like a perfect fleet.
struct ClusterFaultPlan {
  /// Seed of the fault stream (heartbeat-drop draws and backoff jitter).
  std::uint64_t seed = 1;
  /// Per-heartbeat probability that the router misses a node's heartbeat
  /// even though the node is up — what makes suspicion states reachable
  /// without an actual outage.
  double heartbeatDropProbability = 0.0;
  std::vector<NodeKill> kills;
  std::vector<LinkPartition> partitions;
  std::vector<NodeFlap> flaps;
  std::vector<SlowNode> slowNodes;

  bool enabled() const {
    return heartbeatDropProbability > 0.0 || !kills.empty() ||
           !partitions.empty() || !flaps.empty() || !slowNodes.empty();
  }

  /// Throws CheckError on out-of-range probabilities or node ids, inverted
  /// windows, non-positive flap periods, or factors < 1. `nodeCount` bounds
  /// the valid node ids.
  void validate(int nodeCount) const;
};

/// Executes a FaultPlan. One injector serves one simulated run; drop draws
/// and jitter consume the plan-seeded stream in event order, which the
/// deterministic event queue makes reproducible.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }

  /// Draws one Bernoulli(dropProbability) decision for a hop in transit.
  bool dropHop();

  /// True when `p` has not died by time `t`.
  bool aliveAt(Proc p, double t) const;

  /// Death instant of `p`, if the plan kills it.
  std::optional<double> deathTime(Proc p) const;

  /// Product of the α inflation factors of all spikes active at `t`.
  double alphaFactorAt(double t) const;
  /// Product of the β inflation factors of all spikes active at `t`.
  double betaFactorAt(double t) const;

  /// Earliest instant >= t at which `p`'s NIC is outside every stall
  /// window (chained stalls are followed through).
  double stallClearedAt(Proc p, double t) const;

  /// The shared fault stream (backoff jitter draws).
  Rng& rng() { return rng_; }

 private:
  FaultPlan plan_;
  Rng rng_;
};

/// Executes a ClusterFaultPlan: pure time queries for ground-truth node and
/// link state, plus seeded draws (through an embedded FaultInjector, the
/// same stream machinery the simulator uses) for heartbeat loss and retry
/// jitter.
class ClusterFaultInjector {
 public:
  /// Validates the plan against `nodeCount` nodes.
  ClusterFaultInjector(const ClusterFaultPlan& plan, int nodeCount);

  const ClusterFaultPlan& plan() const { return plan_; }

  /// True when a NodeKill has `node` dead at `t` (killed, not yet rejoined).
  bool killedAt(int node, double t) const;

  /// Earliest rejoin instant scheduled for `node`, if a kill has one.
  std::optional<double> rejoinTime(int node) const;

  /// True when a flap window has `node` in a down phase at `t`.
  bool flappedDownAt(int node, double t) const;

  /// Ground truth: `node` is running and answering at `t` (neither killed
  /// nor flapped down).
  bool nodeUpAt(int node, double t) const {
    return !killedAt(node, t) && !flappedDownAt(node, t);
  }

  /// Ground truth: the link between `a` and `b` (kRouterEndpoint for the
  /// router side) carries traffic at `t`.
  bool linkUpAt(int a, int b, double t) const;

  /// Product of the slow-node factors active on `node` at `t` (1 when none).
  double slowFactorAt(int node, double t) const;

  /// Draws one Bernoulli(heartbeatDropProbability) decision.
  bool dropHeartbeat() { return base_.dropHop(); }

  /// The shared fault stream (retry backoff jitter draws).
  Rng& rng() { return base_.rng(); }

 private:
  static FaultPlan streamPlanFor(const ClusterFaultPlan& plan);

  ClusterFaultPlan plan_;
  /// Seeded drop/jitter draws reuse the single-run injector unchanged: its
  /// FaultPlan carries only the seed and the drop probability.
  FaultInjector base_;
};

}  // namespace pushpart
