// Per-phase execution telemetry: what a run observed about each processor.
//
// The adaptive-serving loop (src/adapt, DESIGN.md §16) closes the gap
// between the ratio a plan was solved for and the speeds the platform is
// actually delivering. Its raw input is one PhaseSample per executed phase —
// an MMM run of the simulator (sim/mmm_sim.hpp) or the real threaded
// executor (exec/kij_executor.hpp) — carrying, per processor, the work
// completed and the busy time it took. Consumers never see absolute speeds:
// units / busySeconds is a throughput observation, and only throughput
// *ratios* matter downstream (the paper's P_r : R_r : S_r is scale-free).
//
// The emitters are deliberately dumb: they report what happened and never
// smooth, clamp or judge — that is the RatioEstimator's job. A `stalled`
// mark means the phase saw the processor make no usable progress (e.g. a
// NIC stall window covered it); `dead` means the run's failure detection
// (the simulator's death machinery, or a cluster failure detector standing
// above the executor) confirmed the processor down for this phase. A dead
// node's units/busySeconds are zero — there is nothing to measure.
//
// This header sits in sim/ (not adapt/) so both emitters can include it
// without inverting the library layering; src/adapt depends on sim, not the
// other way around.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "grid/proc.hpp"

namespace pushpart {

/// One processor's share of a phase: work done and time spent doing it.
struct NodeSample {
  Proc proc = Proc::P;
  /// Work units completed (MACs for an MMM phase). Zero when dead/stalled.
  std::int64_t units = 0;
  /// Seconds the processor was busy on those units.
  double busySeconds = 0.0;
  /// The phase saw no usable progress (e.g. a NIC stall window covered it).
  bool stalled = false;
  /// Failure detection confirmed the processor down for this phase.
  bool dead = false;
};

/// One executed phase's observations, indexed by procSlot (R, S, P).
struct PhaseSample {
  /// Instant the phase ended, on the emitter's clock (the simulator's
  /// virtual time, the executor's wall time, or a test's FakeClock).
  double at = 0.0;
  std::array<NodeSample, kNumProcs> nodes{};

  NodeSample& node(Proc p) { return nodes[procSlot(p)]; }
  const NodeSample& node(Proc p) const { return nodes[procSlot(p)]; }
};

/// Telemetry hook: invoked once per executed phase, on the emitting thread.
/// Must be cheap and must not call back into the emitter.
using TelemetrySink = std::function<void(const PhaseSample&)>;

}  // namespace pushpart
