// Sender-bound Hockney network with topology routing and fault injection.
//
// Each node's NIC serializes its outbound messages: a message of M elements
// occupies the sender for α + β·M seconds and is delivered at completion
// (receive side unconstrained — the standard sender-bound Hockney model the
// paper's §II analysis assumes). Under a star topology, spoke↔spoke traffic
// is stored and forwarded at the hub, whose NIC also serializes the
// forwarding load; this is how the simulator exposes costs the closed-form
// models only approximate.
//
// With a FaultInjector attached the network additionally models an
// imperfect cluster: hops can be lost in transit, latency spikes inflate
// α/β inside time windows, stalled NICs delay hop starts, and messages
// touching a dead processor never arrive. sendReliable() layers
// timeout/retransmit semantics (bounded exponential backoff with jitter)
// on top, which is what the fault-aware simulation paths use. Without an
// injector the arithmetic is bit-identical to the original perfect-network
// model.
#pragma once

#include <array>
#include <functional>

#include "grid/proc.hpp"
#include "model/machine.hpp"
#include "model/topology.hpp"
#include "sim/event.hpp"
#include "sim/fault.hpp"

namespace pushpart {

struct SimMessage {
  Proc from = Proc::P;
  Proc to = Proc::P;
  std::int64_t elements = 0;
};

/// Per-run network statistics. The fault counters stay zero when no
/// FaultInjector is attached.
struct NetworkStats {
  std::int64_t messagesSent = 0;   ///< Including forwarding hops and retries.
  std::int64_t elementsMoved = 0;  ///< Element·hops.
  std::array<double, kNumProcs> nicBusySeconds{};
  std::int64_t dropsInjected = 0;       ///< Hops lost in transit.
  std::int64_t retriesSent = 0;         ///< Retransmissions after a timeout.
  std::int64_t transfersAbandoned = 0;  ///< Reliable transfers out of attempts.
  std::int64_t deadEndpointFailures = 0;  ///< Transfers aborted: peer dead.
};

/// Final verdict of one reliable transfer.
struct TransferOutcome {
  bool delivered = false;
  /// Delivery instant, or the instant the sender gave up / detected death.
  double at = 0.0;
  int attempts = 1;
  bool peerDead = false;  ///< Failed because an endpoint died.
};

class Network {
 public:
  Network(EventQueue& events, const Machine& machine, Topology topology,
          StarConfig star = {}, FaultInjector* faults = nullptr)
      : events_(events),
        machine_(machine),
        topology_(topology),
        star_(star),
        faults_(faults) {}

  /// Queues `message` on the sender's NIC no earlier than `readyAt`;
  /// `onDelivered(t)` fires at final delivery (after the hub hop, if any).
  /// Zero-element messages deliver immediately without NIC cost. Fault-blind:
  /// delivery is guaranteed even when an injector is attached (timing faults
  /// still apply); use sendReliable for loss-aware transfers.
  void send(const SimMessage& message, double readyAt,
            std::function<void(double)> onDelivered);

  /// Reliable transfer with retransmission: attempts the send, detects a
  /// loss `policy.timeoutSeconds` after the hop completed, backs off
  /// (bounded exponential with jitter from the fault stream) and retries up
  /// to `policy.maxAttempts` total attempts. Fails fast with peerDead when
  /// an endpoint is dead at (re)send or detection time. Requires a
  /// FaultInjector; with a fault-free plan it degenerates to send().
  void sendReliable(const SimMessage& message, double readyAt,
                    const RetryPolicy& policy,
                    std::function<void(const TransferOutcome&)> onDone);

  /// Earliest instant the processor's NIC can accept another send.
  double nicFreeAt(Proc p) const { return nicFreeAt_[procSlot(p)]; }

  const NetworkStats& stats() const { return stats_; }

 private:
  /// Books one hop on `sender`'s NIC starting no earlier than readyAt
  /// (later when the NIC is stalled); returns completion time. Latency
  /// spikes inflate the hop's α/β by their factors at the start instant.
  double bookHop(Proc sender, std::int64_t elements, double readyAt);

  /// One unreliable end-to-end attempt (including the hub hop, if any).
  /// `onResult(delivered, t)` fires at delivery, or at the instant the
  /// message was lost (drop or dead endpoint); `t` is when the last hop
  /// finished transmitting.
  void attemptOnce(const SimMessage& message, double readyAt,
                   std::function<void(bool, double)> onResult);

  void runAttempt(SimMessage message, double readyAt, RetryPolicy policy,
                  int attempt,
                  std::function<void(const TransferOutcome&)> onDone);

  EventQueue& events_;
  Machine machine_;
  Topology topology_;
  StarConfig star_;
  FaultInjector* faults_;
  std::array<double, kNumProcs> nicFreeAt_{};
  NetworkStats stats_;
};

}  // namespace pushpart
