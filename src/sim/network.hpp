// Sender-bound Hockney network with topology routing.
//
// Each node's NIC serializes its outbound messages: a message of M elements
// occupies the sender for α + β·M seconds and is delivered at completion
// (receive side unconstrained — the standard sender-bound Hockney model the
// paper's §II analysis assumes). Under a star topology, spoke↔spoke traffic
// is stored and forwarded at the hub, whose NIC also serializes the
// forwarding load; this is how the simulator exposes costs the closed-form
// models only approximate.
#pragma once

#include <array>
#include <functional>

#include "grid/proc.hpp"
#include "model/machine.hpp"
#include "model/topology.hpp"
#include "sim/event.hpp"

namespace pushpart {

struct SimMessage {
  Proc from = Proc::P;
  Proc to = Proc::P;
  std::int64_t elements = 0;
};

/// Per-run network statistics.
struct NetworkStats {
  std::int64_t messagesSent = 0;   ///< Including forwarding hops.
  std::int64_t elementsMoved = 0;  ///< Element·hops.
  std::array<double, kNumProcs> nicBusySeconds{};
};

class Network {
 public:
  Network(EventQueue& events, const Machine& machine, Topology topology,
          StarConfig star = {})
      : events_(events), machine_(machine), topology_(topology), star_(star) {}

  /// Queues `message` on the sender's NIC no earlier than `readyAt`;
  /// `onDelivered(t)` fires at final delivery (after the hub hop, if any).
  /// Zero-element messages deliver immediately without NIC cost.
  void send(const SimMessage& message, double readyAt,
            std::function<void(double)> onDelivered);

  /// Earliest instant the processor's NIC can accept another send.
  double nicFreeAt(Proc p) const { return nicFreeAt_[procSlot(p)]; }

  const NetworkStats& stats() const { return stats_; }

 private:
  /// Books one hop on `sender`'s NIC starting no earlier than readyAt;
  /// returns completion time.
  double bookHop(Proc sender, std::int64_t elements, double readyAt);

  EventQueue& events_;
  Machine machine_;
  Topology topology_;
  StarConfig star_;
  std::array<double, kNumProcs> nicFreeAt_{};
  NetworkStats stats_;
};

}  // namespace pushpart
