#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace pushpart {

void FaultPlan::validate() const {
  PUSHPART_CHECK_MSG(dropProbability >= 0.0 && dropProbability <= 1.0,
                     "drop probability must be in [0, 1], got "
                         << dropProbability);
  for (const LatencySpike& s : spikes) {
    PUSHPART_CHECK_MSG(s.begin >= 0.0 && s.end > s.begin,
                       "latency spike window [" << s.begin << ", " << s.end
                                                << ") is empty or negative");
    PUSHPART_CHECK_MSG(s.alphaFactor > 0.0 && s.betaFactor > 0.0,
                       "latency spike factors must be positive");
  }
  for (const NicStall& s : stalls) {
    PUSHPART_CHECK_MSG(s.at >= 0.0 && s.seconds >= 0.0,
                       "NIC stall times must be non-negative");
  }
  if (death) PUSHPART_CHECK_MSG(death->at >= 0.0, "death time must be >= 0");
}

void RetryPolicy::validate() const {
  PUSHPART_CHECK_MSG(maxAttempts >= 1, "need at least one attempt");
  PUSHPART_CHECK_MSG(timeoutSeconds > 0.0, "timeout must be positive");
  PUSHPART_CHECK_MSG(backoffSeconds >= 0.0 && backoffMaxSeconds >= 0.0,
                     "backoff must be non-negative");
  PUSHPART_CHECK_MSG(backoffFactor >= 1.0, "backoff factor must be >= 1");
  PUSHPART_CHECK_MSG(jitterFraction >= 0.0 && jitterFraction < 1.0,
                     "jitter fraction must be in [0, 1), got "
                         << jitterFraction);
}

double RetryPolicy::backoffBeforeRetry(int retry, Rng& rng) const {
  PUSHPART_CHECK(retry >= 1);
  if (jitterMode == JitterMode::kDecorrelated) {
    // delay_r = min(cap, uniform(base, 3 · delay_{r−1})), delay_0 = base.
    // The chain is replayed from the base on every call (consuming `retry`
    // draws), so the delay is a pure function of (retry, stream position)
    // rather than of hidden per-transfer state.
    double delay = backoffSeconds;
    for (int r = 1; r <= retry; ++r) {
      const double hi = std::max(backoffSeconds, 3.0 * delay);
      delay = std::min(backoffMaxSeconds,
                       backoffSeconds + (hi - backoffSeconds) * rng.real());
    }
    return delay;
  }
  const double raw =
      backoffSeconds * std::pow(backoffFactor, static_cast<double>(retry - 1));
  const double capped = std::min(raw, backoffMaxSeconds);
  // Jitter draw happens even at jitterFraction == 0 so the stream position
  // depends only on the number of retries, not on the knob values.
  const double scale = 1.0 + jitterFraction * (2.0 * rng.real() - 1.0);
  return capped * scale;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {
  plan_.validate();
}

bool FaultInjector::dropHop() {
  if (plan_.dropProbability <= 0.0) return false;
  return rng_.chance(plan_.dropProbability);
}

bool FaultInjector::aliveAt(Proc p, double t) const {
  return !(plan_.death && plan_.death->proc == p && t >= plan_.death->at);
}

std::optional<double> FaultInjector::deathTime(Proc p) const {
  if (plan_.death && plan_.death->proc == p) return plan_.death->at;
  return std::nullopt;
}

double FaultInjector::alphaFactorAt(double t) const {
  double f = 1.0;
  for (const LatencySpike& s : plan_.spikes)
    if (t >= s.begin && t < s.end) f *= s.alphaFactor;
  return f;
}

double FaultInjector::betaFactorAt(double t) const {
  double f = 1.0;
  for (const LatencySpike& s : plan_.spikes)
    if (t >= s.begin && t < s.end) f *= s.betaFactor;
  return f;
}

void ClusterFaultPlan::validate(int nodeCount) const {
  PUSHPART_CHECK_MSG(nodeCount >= 1, "cluster needs at least one node");
  PUSHPART_CHECK_MSG(
      heartbeatDropProbability >= 0.0 && heartbeatDropProbability <= 1.0,
      "heartbeat drop probability must be in [0, 1], got "
          << heartbeatDropProbability);
  const auto checkNode = [nodeCount](int node, const char* what) {
    PUSHPART_CHECK_MSG(node >= 0 && node < nodeCount,
                       what << " names node " << node << " outside [0, "
                            << nodeCount << ")");
  };
  for (const NodeKill& k : kills) {
    checkNode(k.node, "kill");
    PUSHPART_CHECK_MSG(k.at >= 0.0, "kill time must be >= 0");
    if (k.rejoinAt)
      PUSHPART_CHECK_MSG(*k.rejoinAt > k.at,
                         "rejoin at " << *k.rejoinAt
                                      << " must follow the kill at " << k.at);
  }
  for (const LinkPartition& p : partitions) {
    if (p.a != kRouterEndpoint) checkNode(p.a, "partition");
    if (p.b != kRouterEndpoint) checkNode(p.b, "partition");
    PUSHPART_CHECK_MSG(p.a != p.b, "partition endpoints must differ");
    PUSHPART_CHECK_MSG(p.begin >= 0.0 && p.end > p.begin,
                       "partition window [" << p.begin << ", " << p.end
                                            << ") is empty or negative");
  }
  for (const NodeFlap& f : flaps) {
    checkNode(f.node, "flap");
    PUSHPART_CHECK_MSG(f.begin >= 0.0 && f.end > f.begin,
                       "flap window [" << f.begin << ", " << f.end
                                       << ") is empty or negative");
    PUSHPART_CHECK_MSG(f.period > 0.0, "flap period must be positive");
    PUSHPART_CHECK_MSG(f.upFraction >= 0.0 && f.upFraction <= 1.0,
                       "flap up-fraction must be in [0, 1], got "
                           << f.upFraction);
  }
  for (const SlowNode& s : slowNodes) {
    checkNode(s.node, "slow-node");
    PUSHPART_CHECK_MSG(s.begin >= 0.0 && s.end > s.begin,
                       "slow-node window [" << s.begin << ", " << s.end
                                            << ") is empty or negative");
    PUSHPART_CHECK_MSG(s.factor >= 1.0,
                       "slow-node factor must be >= 1, got " << s.factor);
  }
}

FaultPlan ClusterFaultInjector::streamPlanFor(const ClusterFaultPlan& plan) {
  FaultPlan stream;
  stream.seed = plan.seed;
  stream.dropProbability = plan.heartbeatDropProbability;
  return stream;
}

ClusterFaultInjector::ClusterFaultInjector(const ClusterFaultPlan& plan,
                                           int nodeCount)
    : plan_(plan), base_(streamPlanFor(plan)) {
  plan_.validate(nodeCount);
}

bool ClusterFaultInjector::killedAt(int node, double t) const {
  for (const NodeKill& k : plan_.kills) {
    if (k.node != node || t < k.at) continue;
    if (!k.rejoinAt || t < *k.rejoinAt) return true;
  }
  return false;
}

std::optional<double> ClusterFaultInjector::rejoinTime(int node) const {
  std::optional<double> earliest;
  for (const NodeKill& k : plan_.kills)
    if (k.node == node && k.rejoinAt &&
        (!earliest || *k.rejoinAt < *earliest))
      earliest = *k.rejoinAt;
  return earliest;
}

bool ClusterFaultInjector::flappedDownAt(int node, double t) const {
  for (const NodeFlap& f : plan_.flaps) {
    if (f.node != node || t < f.begin || t >= f.end) continue;
    // Square wave: up for period·upFraction, then down for the remainder.
    const double phase = std::fmod(t - f.begin, f.period);
    if (phase >= f.period * f.upFraction) return true;
  }
  return false;
}

bool ClusterFaultInjector::linkUpAt(int a, int b, double t) const {
  for (const LinkPartition& p : plan_.partitions) {
    const bool match = (p.a == a && p.b == b) || (p.a == b && p.b == a);
    if (match && t >= p.begin && t < p.end) return false;
  }
  return true;
}

double ClusterFaultInjector::slowFactorAt(int node, double t) const {
  double f = 1.0;
  for (const SlowNode& s : plan_.slowNodes)
    if (s.node == node && t >= s.begin && t < s.end) f *= s.factor;
  return f;
}

double FaultInjector::stallClearedAt(Proc p, double t) const {
  // Stall windows may overlap or chain; follow them until a fixpoint.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const NicStall& s : plan_.stalls) {
      if (s.proc != p || s.seconds <= 0.0) continue;
      if (t >= s.at && t < s.at + s.seconds) {
        t = s.at + s.seconds;
        moved = true;
      }
    }
  }
  return t;
}

}  // namespace pushpart
