// Minimal discrete-event engine.
//
// The cluster simulator (sim/mmm_sim.hpp) models message passing at event
// granularity: NIC bookings, store-and-forward hops and serial send chains
// are all callbacks on this queue. Events at equal timestamps run in
// scheduling order (a monotone sequence number breaks ties), which keeps
// simulations deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "support/check.hpp"

namespace pushpart {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }

  /// Schedules `cb` at absolute time `time` (must be >= now()).
  void schedule(double time, Callback cb) {
    PUSHPART_CHECK_MSG(time >= now_,
                       "event scheduled in the past: " << time << " < " << now_);
    heap_.push(Event{time, seq_++, std::move(cb)});
  }

  /// Schedules `cb` `delay` seconds from now (delay >= 0).
  void scheduleAfter(double delay, Callback cb) {
    schedule(now_ + delay, std::move(cb));
  }

  /// Executes the earliest pending event. Returns false when none remain.
  bool step() {
    if (heap_.empty()) return false;
    // Moving out of a priority_queue requires a const_cast; the element is
    // popped immediately after.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ev.callback();
    return true;
  }

  /// Runs to exhaustion.
  void run() {
    while (step()) {
    }
  }

  std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback callback;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace pushpart
