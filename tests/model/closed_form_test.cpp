#include "model/closed_form.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "shapes/candidates.hpp"

namespace pushpart {
namespace {

TEST(ClosedFormTest, SquareCornerFormula) {
  // 2(√(R/T) + √(S/T)); for 10:1:1, T = 12.
  const Ratio ratio{10, 1, 1};
  EXPECT_NEAR(closedFormVoC(CandidateShape::kSquareCorner, ratio),
              2.0 * (std::sqrt(1.0 / 12) + std::sqrt(1.0 / 12)), 1e-12);
}

TEST(ClosedFormTest, SquareCornerInfeasibleBelowBoundary) {
  EXPECT_TRUE(std::isinf(
      closedFormVoC(CandidateShape::kSquareCorner, Ratio{1.5, 1, 1})));
}

TEST(ClosedFormTest, BlockAndTraditionalAgree) {
  // Both cost 1 + (R_r+S_r)/T in the continuous limit.
  for (const auto& ratio : paperRatios()) {
    EXPECT_DOUBLE_EQ(closedFormVoC(CandidateShape::kBlockRectangle, ratio),
                     closedFormVoC(CandidateShape::kTraditionalRectangle, ratio));
  }
}

TEST(ClosedFormTest, LRectangleAlwaysAtLeastTraditional) {
  // 1 + (P_r+S_r)/T ≥ 1 + (R_r+S_r)/T because P_r ≥ R_r.
  for (const auto& ratio : paperRatios()) {
    EXPECT_GE(closedFormVoC(CandidateShape::kLRectangle, ratio) + 1e-12,
              closedFormVoC(CandidateShape::kTraditionalRectangle, ratio));
  }
}

// Cross-validation: the closed forms must match grid-measured VoC of the
// integer constructions up to O(1/N) discretisation.
class ClosedFormCrossCheck : public ::testing::TestWithParam<const char*> {};

TEST_P(ClosedFormCrossCheck, MatchesMeasuredVoC) {
  const auto ratio = Ratio::parse(GetParam());
  const int n = 240;
  for (CandidateShape shape : kAllCandidates) {
    const double predicted = closedFormVoC(shape, ratio);
    if (std::isinf(predicted)) continue;
    if (!candidateFeasible(shape, n, ratio)) continue;
    const auto q = makeCandidate(shape, n, ratio);
    const double measured =
        static_cast<double>(q.volumeOfCommunication()) / (static_cast<double>(n) * n);
    EXPECT_NEAR(measured, predicted, 6.0 / n + 0.01)
        << candidateName(shape) << " at ratio " << ratio.str();
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRatios, ClosedFormCrossCheck,
                         ::testing::Values("2:1:1", "3:1:1", "4:1:1", "5:1:1",
                                           "10:1:1", "3:2:1", "4:2:1", "5:2:1",
                                           "5:3:1", "5:4:1"));

TEST(ClosedFormScbTest, ScalesWithN2AndTsend) {
  const Ratio ratio{5, 1, 1};
  const double a =
      closedFormScbCommSeconds(CandidateShape::kBlockRectangle, ratio, 100, 8e-9);
  const double b =
      closedFormScbCommSeconds(CandidateShape::kBlockRectangle, ratio, 200, 8e-9);
  EXPECT_NEAR(b / a, 4.0, 1e-9);
  const double c =
      closedFormScbCommSeconds(CandidateShape::kBlockRectangle, ratio, 100, 16e-9);
  EXPECT_NEAR(c / a, 2.0, 1e-9);
}

TEST(CrossoverTest, SquareCornerEventuallyWins) {
  // Fig. 13: for R_r = S_r = 1 the Square-Corner beats the Block-Rectangle
  // once P_r is large enough.
  const double cross = squareCornerCrossover(1, 1);
  ASSERT_TRUE(std::isfinite(cross));
  EXPECT_GT(cross, 2.0);  // beyond the feasibility boundary
  // Verify the sign on both sides.
  const Ratio below{cross * 0.95, 1, 1};
  const Ratio above{cross * 1.05, 1, 1};
  EXPECT_GT(closedFormVoC(CandidateShape::kSquareCorner, below),
            closedFormVoC(CandidateShape::kBlockRectangle, below));
  EXPECT_LT(closedFormVoC(CandidateShape::kSquareCorner, above),
            closedFormVoC(CandidateShape::kBlockRectangle, above));
}

TEST(CrossoverTest, HigherRRaisesCrossover) {
  // More balanced slow processors delay the Square-Corner's win (Fig. 13's
  // surface rises with R_r).
  const double c1 = squareCornerCrossover(1, 1);
  const double c4 = squareCornerCrossover(4, 1);
  ASSERT_TRUE(std::isfinite(c1));
  ASSERT_TRUE(std::isfinite(c4));
  EXPECT_GT(c4, c1);
}

}  // namespace
}  // namespace pushpart
