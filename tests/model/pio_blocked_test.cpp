#include <gtest/gtest.h>

#include "grid/builder.hpp"
#include "model/models.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

Machine machineFor(const Ratio& ratio) {
  Machine m;
  m.ratio = ratio;
  m.sendElementSeconds = 8e-9;
  m.baseFlopSeconds = 1e-9;
  return m;
}

TEST(PioBlockedTest, BlockSizeOneMatchesPioModel) {
  Rng rng(3);
  const Ratio ratio{3, 2, 1};
  const auto q = randomPartition(18, ratio, rng);
  const Machine m = machineFor(ratio);
  const auto pio = evalModel(Algo::kPIO, q, m);
  const auto blocked = evalPioBlocked(q, m, 1);
  EXPECT_NEAR(blocked.execSeconds, pio.execSeconds, pio.execSeconds * 1e-12);
  EXPECT_NEAR(blocked.commSeconds, pio.commSeconds, pio.commSeconds * 1e-12);
}

TEST(PioBlockedTest, FullBlockDegeneratesToScb) {
  Rng rng(4);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(16, ratio, rng);
  const Machine m = machineFor(ratio);
  const auto scb = evalModel(Algo::kSCB, q, m);
  const auto blocked = evalPioBlocked(q, m, q.n());
  // One bulk exchange, then all computation — exactly SCB's structure.
  EXPECT_NEAR(blocked.execSeconds, scb.execSeconds, scb.execSeconds * 1e-9);
}

TEST(PioBlockedTest, AllBlockSizesBoundedBySCB) {
  Rng rng(5);
  const Ratio ratio{5, 2, 1};
  const auto q = randomPartition(20, ratio, rng);
  const Machine m = machineFor(ratio);
  const double scb = evalModel(Algo::kSCB, q, m).execSeconds;
  for (int b : {1, 2, 3, 5, 8, 20}) {
    const auto blocked = evalPioBlocked(q, m, b);
    EXPECT_LE(blocked.execSeconds, scb + 1e-12) << "blockSize=" << b;
    // Total volume is invariant: only the slicing changes.
    EXPECT_NEAR(blocked.commSeconds, evalModel(Algo::kSCB, q, m).commSeconds,
                1e-12)
        << "blockSize=" << b;
  }
}

TEST(PioBlockedTest, StarTopologyNeverCheaper) {
  Rng rng(6);
  const Ratio ratio{3, 1, 1};
  const auto q = randomPartition(16, ratio, rng);
  const Machine m = machineFor(ratio);
  for (int b : {1, 4}) {
    const double full =
        evalPioBlocked(q, m, b, Topology::kFullyConnected).commSeconds;
    const double star = evalPioBlocked(q, m, b, Topology::kStar).commSeconds;
    EXPECT_GE(star + 1e-15, full);
  }
}

TEST(PioBlockedTest, InvalidBlockSizeRejected) {
  Partition q(8);
  EXPECT_THROW(evalPioBlocked(q, machineFor(Ratio{2, 1, 1}), 0), CheckError);
}

TEST(PioBlockedTest, UniformPartitionIsPureCompute) {
  Partition q(12);
  const Machine m = machineFor(Ratio{2, 1, 1});
  for (int b : {1, 3, 12}) {
    const auto r = evalPioBlocked(q, m, b);
    EXPECT_DOUBLE_EQ(r.commSeconds, 0.0);
    EXPECT_NEAR(r.execSeconds, r.compSeconds, r.compSeconds * 1e-12);
  }
}

}  // namespace
}  // namespace pushpart
