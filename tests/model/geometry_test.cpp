#include "model/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "grid/metrics.hpp"
#include "model/closed_form.hpp"

namespace pushpart {
namespace {

const char* kRatios[] = {"2:1:1", "3:1:1", "5:1:1", "10:1:1",
                         "3:2:1", "5:2:1", "5:4:1"};

TEST(CandidateGeometryTest, AreasMatchRatioFractions) {
  for (const char* rs : kRatios) {
    const Ratio ratio = Ratio::parse(rs);
    for (CandidateShape shape : kAllCandidates) {
      ShapeGeometry g;
      try {
        g = candidateGeometry(shape, ratio);
      } catch (const std::invalid_argument&) {
        continue;  // infeasible for this ratio
      }
      EXPECT_NEAR(g.r.area(), ratio.fraction(Proc::R), 1e-12)
          << candidateName(shape) << " " << rs;
      EXPECT_NEAR(g.s.area(), ratio.fraction(Proc::S), 1e-12)
          << candidateName(shape) << " " << rs;
      // R and S never overlap in the canonical placements.
      const bool overlap = g.r.y0 < g.s.y1 && g.s.y0 < g.r.y1 &&
                           g.r.x0 < g.s.x1 && g.s.x0 < g.r.x1;
      EXPECT_FALSE(overlap) << candidateName(shape) << " " << rs;
    }
  }
}

TEST(CandidateGeometryTest, InfeasibleShapesThrow) {
  EXPECT_THROW(candidateGeometry(CandidateShape::kSquareCorner, Ratio{1.5, 1, 1}),
               std::invalid_argument);
}

TEST(GeometryPairVolumesTest, SumEqualsClosedFormVoC) {
  for (const char* rs : kRatios) {
    const Ratio ratio = Ratio::parse(rs);
    for (CandidateShape shape : kAllCandidates) {
      const double voc = closedFormVoC(shape, ratio);
      if (std::isinf(voc)) continue;
      const auto v = geometryPairVolumes(candidateGeometry(shape, ratio));
      double total = 0;
      for (const auto& row : v)
        for (double x : row) total += x;
      EXPECT_NEAR(total, voc, 1e-9) << candidateName(shape) << " " << rs;
    }
  }
}

TEST(GeometryPairVolumesTest, SquareCornerSlowPairsSilent) {
  const auto v = geometryPairVolumes(
      candidateGeometry(CandidateShape::kSquareCorner, Ratio{10, 1, 1}));
  EXPECT_DOUBLE_EQ(v[procSlot(Proc::R)][procSlot(Proc::S)], 0.0);
  EXPECT_DOUBLE_EQ(v[procSlot(Proc::S)][procSlot(Proc::R)], 0.0);
  EXPECT_GT(v[procSlot(Proc::P)][procSlot(Proc::R)], 0.0);
}

using GeomParam = std::tuple<CandidateShape, const char*>;

class GeometryGridCrossCheck : public ::testing::TestWithParam<GeomParam> {};

TEST_P(GeometryGridCrossCheck, PairVolumesMatchGridToDiscretization) {
  const auto [shape, rs] = GetParam();
  const Ratio ratio = Ratio::parse(rs);
  const int n = 240;
  if (!candidateFeasible(shape, n, ratio)) GTEST_SKIP();
  ShapeGeometry g;
  try {
    g = candidateGeometry(shape, ratio);
  } catch (const std::invalid_argument&) {
    GTEST_SKIP() << "continuous-infeasible";
  }
  const auto cont = geometryPairVolumes(g);
  const auto grid = pairVolumes(makeCandidate(shape, n, ratio));
  const double n2 = static_cast<double>(n) * n;
  for (Proc s : kAllProcs)
    for (Proc r : kAllProcs) {
      const double measured =
          static_cast<double>(grid[procSlot(s)][procSlot(r)]) / n2;
      EXPECT_NEAR(measured, cont[procSlot(s)][procSlot(r)], 8.0 / n + 0.01)
          << candidateName(shape) << " " << rs << " " << procName(s) << "->"
          << procName(r);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndRatios, GeometryGridCrossCheck,
    ::testing::Combine(::testing::ValuesIn(kAllCandidates),
                       ::testing::Values("3:1:1", "10:1:1", "5:2:1")));

TEST(GeometryOverlapTest, MatchesGridOverlapElements) {
  const Ratio ratio{10, 1, 1};
  const int n = 240;
  for (CandidateShape shape :
       {CandidateShape::kSquareCorner, CandidateShape::kBlockRectangle,
        CandidateShape::kSquareRectangle}) {
    const double cont =
        geometryOverlapFraction(candidateGeometry(shape, ratio));
    const auto q = makeCandidate(shape, n, ratio);
    const double grid =
        static_cast<double>(overlapElements(q, Proc::P)) /
        (static_cast<double>(n) * n);
    EXPECT_NEAR(grid, cont, 8.0 / n + 0.01) << candidateName(shape);
  }
}

TEST(GeometryOverlapTest, StripShapesHaveNoOverlap) {
  // Full-height R strips leave no P-only columns... rows: R touches every
  // row, so the free-row measure is zero.
  for (CandidateShape shape :
       {CandidateShape::kLRectangle, CandidateShape::kSquareRectangle}) {
    const double f =
        geometryOverlapFraction(candidateGeometry(shape, Ratio{5, 2, 1}));
    EXPECT_DOUBLE_EQ(f, 0.0) << candidateName(shape);
  }
}

TEST(EvalClosedFormTest, MatchesGridModelAtModerateN) {
  Machine m;
  m.ratio = Ratio{10, 1, 1};
  const int n = 240;
  for (CandidateShape shape : kAllCandidates) {
    if (!candidateFeasible(shape, n, m.ratio)) continue;
    ShapeGeometry g;
    try {
      g = candidateGeometry(shape, m.ratio);
    } catch (const std::invalid_argument&) {
      continue;
    }
    const auto q = makeCandidate(shape, n, m.ratio);
    for (Algo algo : {Algo::kSCB, Algo::kPCB, Algo::kSCO, Algo::kPCO}) {
      const auto gridModel = evalModel(algo, q, m);
      const auto cf = evalCandidateClosedForm(algo, shape, n, m);
      EXPECT_NEAR(cf.execSeconds, gridModel.execSeconds,
                  gridModel.execSeconds * 0.08)
          << candidateName(shape) << " " << algoName(algo);
    }
  }
}

TEST(EvalClosedFormTest, PioRejected) {
  Machine m;
  m.ratio = Ratio{5, 1, 1};
  EXPECT_THROW(evalCandidateClosedForm(Algo::kPIO,
                                       CandidateShape::kBlockRectangle, 100, m),
               std::invalid_argument);
}

TEST(EvalClosedFormTest, ConstantTimePaperScaleSweep) {
  // The point of the closed forms: evaluating N = 100000 costs the same as
  // N = 100 (no grid). Sanity-check scaling: comm ∝ N², comp ∝ N³.
  Machine m;
  m.ratio = Ratio{10, 1, 1};
  const auto small =
      evalCandidateClosedForm(Algo::kSCB, CandidateShape::kSquareCorner, 1000, m);
  const auto large = evalCandidateClosedForm(Algo::kSCB,
                                             CandidateShape::kSquareCorner,
                                             100000, m);
  EXPECT_NEAR(large.commSeconds / small.commSeconds, 1e4, 1e4 * 1e-9);
  EXPECT_NEAR(large.compSeconds / small.compSeconds, 1e6, 1e6 * 1e-9);
}

TEST(EvalClosedFormTest, StarRelayChargesOnlyCoupledShapes) {
  Machine m;
  m.ratio = Ratio{8, 1, 1};
  const auto scFull = evalCandidateClosedForm(
      Algo::kSCB, CandidateShape::kSquareCorner, 500, m);
  const auto scStar = evalCandidateClosedForm(
      Algo::kSCB, CandidateShape::kSquareCorner, 500, m, Topology::kStar);
  EXPECT_DOUBLE_EQ(scFull.commSeconds, scStar.commSeconds);
  const auto trFull = evalCandidateClosedForm(
      Algo::kSCB, CandidateShape::kTraditionalRectangle, 500, m);
  const auto trStar = evalCandidateClosedForm(
      Algo::kSCB, CandidateShape::kTraditionalRectangle, 500, m,
      Topology::kStar);
  EXPECT_GT(trStar.commSeconds, trFull.commSeconds);
}

}  // namespace
}  // namespace pushpart
