#include "model/optimal.hpp"

#include <gtest/gtest.h>

namespace pushpart {
namespace {

Machine machineWith(const Ratio& ratio) {
  Machine m;
  m.ratio = ratio;
  return m;
}

TEST(RankCandidatesTest, ReturnsSortedFeasibleCandidates) {
  const auto ranked =
      rankCandidates(Algo::kSCB, 90, machineWith(Ratio{5, 2, 1}));
  ASSERT_GE(ranked.size(), 4u);
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(ranked[i - 1].model.execSeconds, ranked[i].model.execSeconds);
}

TEST(RankCandidatesTest, InfeasibleShapesExcluded) {
  // P_r too small for the Square-Corner: it must not appear.
  const auto ranked =
      rankCandidates(Algo::kSCB, 90, machineWith(Ratio{1.2, 1, 1}));
  for (const auto& r : ranked)
    EXPECT_NE(r.shape, CandidateShape::kSquareCorner);
}

TEST(SelectOptimalTest, HighHeterogeneityBulkOverlapPrefersSquareCorner) {
  // The paper's two-processor result carries over: with bulk overlap and a
  // strongly heterogeneous ratio, the Square-Corner wins.
  const auto best =
      selectOptimal(Algo::kSCO, 120, machineWith(Ratio{10, 1, 1}));
  EXPECT_EQ(best.shape, CandidateShape::kSquareCorner)
      << candidateName(best.shape);
}

TEST(SelectOptimalTest, NearHomogeneousPrefersRectangular) {
  // 2:1:1 under SCB: the Square-Corner is infeasible (P_r = 2 boundary) or
  // weak; a rectangular family shape must win.
  const auto best = selectOptimal(Algo::kSCB, 120, machineWith(Ratio{2, 1, 1}));
  EXPECT_NE(best.shape, CandidateShape::kSquareCorner);
}

TEST(SelectOptimalTest, WinnerHasMinimalVoCAmongTies) {
  const auto ranked = rankCandidates(Algo::kSCB, 120, machineWith(Ratio{5, 1, 1}));
  ASSERT_FALSE(ranked.empty());
  // Under SCB (comm = VoC·T_send, comp identical across shapes with equal
  // counts), the ranking must follow VoC.
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(ranked[i - 1].voc, ranked[i].voc);
}

TEST(SelectOptimalTest, StarTopologyCanChangeWinner) {
  // Not asserting a specific flip, but the machinery must accept topology
  // and produce a ranking either way.
  const auto full = rankCandidates(Algo::kPCB, 90, machineWith(Ratio{4, 2, 1}),
                                   Topology::kFullyConnected);
  const auto star = rankCandidates(Algo::kPCB, 90, machineWith(Ratio{4, 2, 1}),
                                   Topology::kStar);
  EXPECT_EQ(full.size(), star.size());
  for (std::size_t i = 0; i < full.size(); ++i)
    EXPECT_GE(star[i].model.commSeconds + 1e-15,
              0.0);  // well-formed numbers
}

}  // namespace
}  // namespace pushpart
