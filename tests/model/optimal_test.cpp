#include "model/optimal.hpp"

#include <gtest/gtest.h>

namespace pushpart {
namespace {

Machine machineWith(const Ratio& ratio) {
  Machine m;
  m.ratio = ratio;
  return m;
}

TEST(RankCandidatesTest, ReturnsSortedFeasibleCandidates) {
  const auto ranked =
      rankCandidates(Algo::kSCB, 90, machineWith(Ratio{5, 2, 1}));
  ASSERT_GE(ranked.size(), 4u);
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(ranked[i - 1].model.execSeconds, ranked[i].model.execSeconds);
}

TEST(RankCandidatesTest, InfeasibleShapesExcluded) {
  // P_r too small for the Square-Corner: it must not appear.
  const auto ranked =
      rankCandidates(Algo::kSCB, 90, machineWith(Ratio{1.2, 1, 1}));
  for (const auto& r : ranked)
    EXPECT_NE(r.shape, CandidateShape::kSquareCorner);
}

TEST(SelectOptimalTest, HighHeterogeneityBulkOverlapPrefersSquareCorner) {
  // The paper's two-processor result carries over: with bulk overlap and a
  // strongly heterogeneous ratio, the Square-Corner wins.
  const auto best =
      selectOptimal(Algo::kSCO, 120, machineWith(Ratio{10, 1, 1}));
  EXPECT_EQ(best.shape, CandidateShape::kSquareCorner)
      << candidateName(best.shape);
}

TEST(SelectOptimalTest, NearHomogeneousPrefersRectangular) {
  // 2:1:1 under SCB: the Square-Corner is infeasible (P_r = 2 boundary) or
  // weak; a rectangular family shape must win.
  const auto best = selectOptimal(Algo::kSCB, 120, machineWith(Ratio{2, 1, 1}));
  EXPECT_NE(best.shape, CandidateShape::kSquareCorner);
}

TEST(SelectOptimalTest, WinnerHasMinimalVoCAmongTies) {
  const auto ranked = rankCandidates(Algo::kSCB, 120, machineWith(Ratio{5, 1, 1}));
  ASSERT_FALSE(ranked.empty());
  // Under SCB (comm = VoC·T_send, comp identical across shapes with equal
  // counts), the ranking must follow VoC.
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_LE(ranked[i - 1].voc, ranked[i].voc);
}

TEST(SelectOptimalTest, DegenerateNThrows) {
  // n = 1: one cell cannot be split across three processors, so no candidate
  // is feasible and selectOptimal must refuse with a message naming n.
  try {
    selectOptimal(Algo::kSCB, 1, machineWith(Ratio{5, 2, 1}));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("n=1"), std::string::npos);
  }
  EXPECT_TRUE(rankCandidates(Algo::kSCB, 1, machineWith(Ratio{5, 2, 1}))
                  .empty());
}

TEST(RankCandidatesTest, EqualTimesBreakTiesInCanonicalOrder) {
  // A zero-cost machine models every candidate at exactly 0 s — a six-way
  // tie. The stable sort must then preserve the kAllCandidates enumeration
  // order, making the winner deterministic rather than
  // implementation-defined.
  Machine free = machineWith(Ratio{5, 2, 1});
  free.alphaSeconds = 0.0;
  free.sendElementSeconds = 0.0;
  free.baseFlopSeconds = 0.0;
  const auto ranked = rankCandidates(Algo::kSCB, 90, free);
  ASSERT_GE(ranked.size(), 2u);
  for (const auto& r : ranked) EXPECT_EQ(r.model.execSeconds, 0.0);
  std::size_t cursor = 0;
  for (CandidateShape shape : kAllCandidates) {
    if (cursor < ranked.size() && ranked[cursor].shape == shape) ++cursor;
  }
  EXPECT_EQ(cursor, ranked.size())
      << "tied candidates not in canonical enumeration order";
  const auto again = rankCandidates(Algo::kSCB, 90, free);
  for (std::size_t i = 0; i < ranked.size(); ++i)
    EXPECT_EQ(ranked[i].shape, again[i].shape);
}

TEST(SelectOptimalTest, ScaledRatiosPickTheSameShape) {
  // 6:3:3 describes the same *partitioning problem* as 2:1:1: identical
  // fractions, so identical candidate partitions and identical per-candidate
  // VoC. In a Machine, though, speeds are anchored by baseFlopSeconds (S at
  // speed 1), so scaling the ratio also speeds up the physical machine;
  // under the barrier algorithms the winner depends only on communication
  // (computation is identical across candidates) and must not move. The
  // serve layer's canonicalization (normalize to s = 1 before solving)
  // builds on exactly this invariance.
  for (Algo algo : {Algo::kSCB, Algo::kPCB}) {
    const auto a = selectOptimal(algo, 120, machineWith(Ratio{2, 1, 1}));
    const auto b = selectOptimal(algo, 120, machineWith(Ratio{6, 3, 3}));
    EXPECT_EQ(a.shape, b.shape) << algoName(algo);
    EXPECT_EQ(a.voc, b.voc) << algoName(algo);
  }
  // The candidate set itself is scale-invariant for every algorithm: same
  // shapes in some order, with pairwise-equal VoC per shape.
  for (Algo algo : kAllAlgos) {
    const auto a = rankCandidates(algo, 120, machineWith(Ratio{2, 1, 1}));
    const auto b = rankCandidates(algo, 120, machineWith(Ratio{6, 3, 3}));
    ASSERT_EQ(a.size(), b.size()) << algoName(algo);
    for (const auto& ra : a) {
      bool found = false;
      for (const auto& rb : b)
        found = found || (ra.shape == rb.shape && ra.voc == rb.voc);
      EXPECT_TRUE(found) << algoName(algo) << " "
                         << candidateName(ra.shape);
    }
  }
}

TEST(SelectOptimalTest, StarTopologyCanChangeWinner) {
  // Not asserting a specific flip, but the machinery must accept topology
  // and produce a ranking either way.
  const auto full = rankCandidates(Algo::kPCB, 90, machineWith(Ratio{4, 2, 1}),
                                   Topology::kFullyConnected);
  const auto star = rankCandidates(Algo::kPCB, 90, machineWith(Ratio{4, 2, 1}),
                                   Topology::kStar);
  EXPECT_EQ(full.size(), star.size());
  for (std::size_t i = 0; i < full.size(); ++i)
    EXPECT_GE(star[i].model.commSeconds + 1e-15,
              0.0);  // well-formed numbers
}

}  // namespace
}  // namespace pushpart
