#include "model/models.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "grid/builder.hpp"
#include "grid/metrics.hpp"
#include "push/push.hpp"
#include "shapes/candidates.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

Machine testMachine(const Ratio& ratio) {
  Machine m;
  m.ratio = ratio;
  m.sendElementSeconds = 8e-9;
  m.baseFlopSeconds = 1e-9;
  return m;
}

TEST(PairVolumesTest, SumMatchesVoC) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const auto q = randomPartition(25, Ratio{3, 2, 1}, rng);
    const auto v = pairVolumes(q);
    std::int64_t total = 0;
    for (int s = 0; s < kNumProcs; ++s) {
      EXPECT_EQ(v[static_cast<std::size_t>(s)][static_cast<std::size_t>(s)], 0);
      for (int r = 0; r < kNumProcs; ++r)
        total += v[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)];
    }
    EXPECT_EQ(total, q.volumeOfCommunication());
  }
}

TEST(PairVolumesTest, DisjointCornersExchangeNothing) {
  // Square-Corner: R and S share no rows or columns, so they never
  // communicate with each other — only with P.
  const auto q = makeCandidate(CandidateShape::kSquareCorner, 60, Ratio{8, 1, 1});
  const auto v = pairVolumes(q);
  EXPECT_EQ(v[procSlot(Proc::R)][procSlot(Proc::S)], 0);
  EXPECT_EQ(v[procSlot(Proc::S)][procSlot(Proc::R)], 0);
  EXPECT_GT(v[procSlot(Proc::P)][procSlot(Proc::R)], 0);
}

TEST(ModelTest, UniformPartitionCommunicatesNothing) {
  Partition q(16);  // everything on P
  const Machine m = testMachine(Ratio{2, 1, 1});
  for (Algo algo : kAllAlgos) {
    const auto r = evalModel(algo, q, m);
    EXPECT_DOUBLE_EQ(r.commSeconds, 0.0) << algoName(algo);
    EXPECT_GT(r.execSeconds, 0.0) << algoName(algo);
  }
}

TEST(ModelTest, ScbCommMatchesVoCTimesTsend) {
  Rng rng(7);
  const auto q = randomPartition(20, Ratio{2, 1, 1}, rng);
  const Machine m = testMachine(Ratio{2, 1, 1});
  const auto r = evalModel(Algo::kSCB, q, m);
  EXPECT_DOUBLE_EQ(
      r.commSeconds,
      static_cast<double>(q.volumeOfCommunication()) * m.sendElementSeconds);
}

TEST(ModelTest, PcbCommIsMaxPerProcessor) {
  Rng rng(8);
  const auto q = randomPartition(20, Ratio{3, 1, 1}, rng);
  const Machine m = testMachine(Ratio{3, 1, 1});
  const auto scb = evalModel(Algo::kSCB, q, m);
  const auto pcb = evalModel(Algo::kPCB, q, m);
  // Parallel communication is never slower than serializing everything and
  // never faster than a third of it (3 senders).
  EXPECT_LE(pcb.commSeconds, scb.commSeconds);
  EXPECT_GE(pcb.commSeconds * 3.0, scb.commSeconds);
}

TEST(ModelTest, ComputationBalancedByRatio) {
  // Partition sized by the ratio: per-processor compute times should be
  // nearly equal, so the barrier max is close to each one.
  const Ratio ratio{4, 2, 1};
  const auto q = makeCandidate(CandidateShape::kBlockRectangle, 70, ratio);
  const Machine m = testMachine(ratio);
  const auto r = evalModel(Algo::kSCB, q, m);
  const double ideal =
      m.baseFlopSeconds * 70.0 * 70.0 * 70.0 / ratio.total();
  EXPECT_NEAR(r.compSeconds, ideal, ideal * 0.05);
}

TEST(ModelTest, OverlapNeverIncreasesExecTime) {
  // SCO/PCO overlap part of the computation with communication, so modeled
  // total time is never worse than the barrier versions.
  Rng rng(9);
  for (int trial = 0; trial < 4; ++trial) {
    const auto q = randomPartition(24, Ratio{5, 2, 1}, rng);
    const Machine m = testMachine(Ratio{5, 2, 1});
    EXPECT_LE(evalModel(Algo::kSCO, q, m).execSeconds,
              evalModel(Algo::kSCB, q, m).execSeconds + 1e-12);
    EXPECT_LE(evalModel(Algo::kPCO, q, m).execSeconds,
              evalModel(Algo::kPCB, q, m).execSeconds + 1e-12);
  }
}

TEST(ModelTest, SquareCornerOverlapIsSubstantial) {
  // In a Square-Corner partition P owns full pivot rows/columns outside the
  // two squares, so bulk overlap covers a large fraction of its work.
  const Ratio ratio{10, 1, 1};
  const auto q = makeCandidate(CandidateShape::kSquareCorner, 80, ratio);
  const Machine m = testMachine(ratio);
  const auto sco = evalModel(Algo::kSCO, q, m);
  EXPECT_GT(sco.overlapSeconds, 0.0);
}

// The paper's monotonicity assertion (§IV-B): every model is non-decreasing
// in communication volume when computation is fixed. Pushes only reduce VoC
// and keep counts fixed, so model times must not increase across a push.
class ModelMonotonicityTest
    : public ::testing::TestWithParam<std::tuple<Algo, const char*>> {};

TEST_P(ModelMonotonicityTest, PushNeverIncreasesModeledTime) {
  const auto [algo, ratioStr] = GetParam();
  const auto ratio = Ratio::parse(ratioStr);
  const Machine m = testMachine(ratio);
  Rng rng(31);
  auto q = randomPartition(20, ratio, rng);
  double last = evalModel(algo, q, m).execSeconds;
  for (int step = 0; step < 60; ++step) {
    const Proc active = kSlowProcs[rng.below(2)];
    const Direction dir = kAllDirections[rng.below(4)];
    if (!tryPush(q, active, dir).applied) continue;
    const double now = evalModel(algo, q, m).execSeconds;
    // SCB time is VoC·T_send + fixed computation, so it is exactly
    // push-monotone.
    EXPECT_LE(now, last + 1e-12) << algoName(algo) << " step " << step;
    last = now;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndRatios, ModelMonotonicityTest,
    ::testing::Combine(::testing::Values(Algo::kSCB),
                       ::testing::Values("2:1:1", "5:2:1", "10:1:1")));

TEST(ModelMonotonicityTest, PcbBoundedByScbThroughoutCondensation) {
  // The per-sender max (PCB) may transiently rise when a push hands cells to
  // the busiest sender (the paper's Eq. 6 d_X counts line coverage, ours
  // counts directed copies — see DESIGN.md), but it always stays within the
  // serial envelope: Σ d_X = VoC, so max_X d_X ∈ [VoC/3, VoC].
  const Ratio ratio{5, 2, 1};
  const Machine m = testMachine(ratio);
  Rng rng(33);
  auto q = randomPartition(20, ratio, rng);
  for (int step = 0; step < 120; ++step) {
    const Proc active = kSlowProcs[rng.below(2)];
    const Direction dir = kAllDirections[rng.below(4)];
    (void)tryPush(q, active, dir);
    const double scb = evalModel(Algo::kSCB, q, m).commSeconds;
    const double pcb = evalModel(Algo::kPCB, q, m).commSeconds;
    ASSERT_LE(pcb, scb + 1e-15);
    ASSERT_GE(pcb * 3.0 + 1e-15, scb);
  }
}

TEST(StarTopologyTest, RelayNeverCheapensCommunication) {
  Rng rng(11);
  const auto q = randomPartition(24, Ratio{3, 2, 1}, rng);
  const Machine m = testMachine(Ratio{3, 2, 1});
  for (Algo algo : kAllAlgos) {
    const double full = evalModel(algo, q, m, Topology::kFullyConnected).commSeconds;
    const double star = evalModel(algo, q, m, Topology::kStar).commSeconds;
    EXPECT_GE(star + 1e-15, full) << algoName(algo);
  }
}

TEST(StarTopologyTest, SquareCornerUnaffectedByStar) {
  // R and S never talk to each other in a Square-Corner partition, so hub
  // relaying adds nothing.
  const auto q = makeCandidate(CandidateShape::kSquareCorner, 60, Ratio{8, 1, 1});
  const Machine m = testMachine(Ratio{8, 1, 1});
  const double full = evalModel(Algo::kSCB, q, m, Topology::kFullyConnected).commSeconds;
  const double star = evalModel(Algo::kSCB, q, m, Topology::kStar).commSeconds;
  EXPECT_DOUBLE_EQ(full, star);
}

TEST(StarTopologyTest, TraditionalRectanglePaysRelay) {
  // R and S stack in one strip and share columns — they do exchange data, so
  // the star hub must forward it.
  const auto q =
      makeCandidate(CandidateShape::kTraditionalRectangle, 60, Ratio{8, 1, 1});
  const Machine m = testMachine(Ratio{8, 1, 1});
  const double full = evalModel(Algo::kSCB, q, m, Topology::kFullyConnected).commSeconds;
  const double star = evalModel(Algo::kSCB, q, m, Topology::kStar).commSeconds;
  EXPECT_GT(star, full);
}

TEST(PioModelTest, CommSumsPerStepVolumes) {
  Rng rng(13);
  const auto q = randomPartition(16, Ratio{2, 1, 1}, rng);
  const Machine m = testMachine(Ratio{2, 1, 1});
  const auto r = evalModel(Algo::kPIO, q, m);
  // Total PIO comm equals the SCB comm (same VoC, sent in per-pivot slices).
  const auto scb = evalModel(Algo::kSCB, q, m);
  EXPECT_NEAR(r.commSeconds, scb.commSeconds, scb.commSeconds * 1e-9);
  // With overlap, PIO exec never exceeds comm+comp fully serialized.
  EXPECT_LE(r.execSeconds, scb.execSeconds + 1e-12);
}

TEST(ModelTest, InvalidRatioRejected) {
  Partition q(8);
  Machine m;
  m.ratio = Ratio{1, 5, 1};
  EXPECT_THROW(evalModel(Algo::kSCB, q, m), CheckError);
}

}  // namespace
}  // namespace pushpart
