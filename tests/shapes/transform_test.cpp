#include "shapes/transform.hpp"

#include <gtest/gtest.h>

#include "dfa/dfa.hpp"
#include "grid/builder.hpp"

namespace pushpart {
namespace {

TEST(TranslateCombinedTest, PreservesVoCAndCounts) {
  auto q = fromAscii(
      "RRPPPP\n"
      "RRSPPP\n"
      "PPSPPP\n"
      "PPPPPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  const auto voc = q.volumeOfCommunication();
  ASSERT_TRUE(translateCombined(q, 2, 3));
  EXPECT_EQ(q.volumeOfCommunication(), voc);
  EXPECT_EQ(q.count(Proc::R), 4);
  EXPECT_EQ(q.count(Proc::S), 2);
  EXPECT_EQ(q.at(2, 3), Proc::R);
  EXPECT_EQ(q.at(3, 5), Proc::S);
  q.validateCounters();
}

TEST(TranslateCombinedTest, RejectsOutOfBounds) {
  auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "PPSS\n"
      "PPSS\n");
  const auto original = q;
  EXPECT_FALSE(translateCombined(q, 3, 0));  // S would fall off the bottom
  EXPECT_EQ(q, original);
  EXPECT_FALSE(translateCombined(q, 0, -1));  // R would fall off the left
  EXPECT_EQ(q, original);
}

TEST(TranslateCombinedTest, IdentityIsNoOp) {
  auto q = fromAscii(
      "RP\n"
      "PS\n");
  const auto original = q;
  EXPECT_TRUE(translateCombined(q, 0, 0));
  EXPECT_EQ(q, original);
}

TEST(SlideInnerTest, SlidesSurroundedRectangleToEdge) {
  // Archetype D: S surrounded by R. Thm 8.4 slides S against R's edge.
  auto q = fromAscii(
      "RRRRPP\n"
      "RSSRPP\n"
      "RSSRPP\n"
      "RRRRPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  const auto voc = q.volumeOfCommunication();
  ASSERT_TRUE(slideInner(q, Proc::S, 1, 1));  // to the bottom-right corner
  EXPECT_LE(q.volumeOfCommunication(), voc);
  EXPECT_EQ(q.at(2, 2), Proc::S);
  EXPECT_EQ(q.at(3, 3), Proc::S);
  EXPECT_EQ(q.count(Proc::S), 4);
  EXPECT_EQ(q.count(Proc::R), 12);
  q.validateCounters();
}

TEST(SlideInnerTest, RejectsLeavingSurroundingRect) {
  auto q = fromAscii(
      "RRRRPP\n"
      "RSSRPP\n"
      "RSSRPP\n"
      "RRRRPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  const auto original = q;
  EXPECT_FALSE(slideInner(q, Proc::S, 2, 0));
  EXPECT_EQ(q, original);
}

TEST(SlideInnerTest, RejectsWhenNotSurrounded) {
  auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "PPSS\n"
      "PPSS\n");
  const auto original = q;
  EXPECT_FALSE(slideInner(q, Proc::S, 0, -1));
  EXPECT_EQ(q, original);
}

TEST(SlideInnerTest, RejectsDisplacingThirdProcessor) {
  // Destination cells hold P, outside Thm 8.4's premise.
  auto q = fromAscii(
      "RRRRPP\n"
      "RSSRPP\n"
      "RSSRPP\n"
      "RRRRPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  // Moving right by 2 leaves R's rect; moving down-right into the R border is
  // allowed, but a crafted grid with P inside would refuse. Replace one
  // border cell with P:
  q.set(3, 3, Proc::P);
  const auto original = q;
  EXPECT_FALSE(slideInner(q, Proc::S, 1, 1));
  EXPECT_EQ(q, original);
}

TEST(ReduceToArchetypeATest, ReducesSurround) {
  const Ratio ratio{5, 1, 1};
  // Build a D-shaped partition at the ratio's element counts: start from the
  // DFA on a seed that lands in D is flaky; instead synthesise one directly.
  const int n = 12;
  const auto counts = ratio.elementCounts(n);
  Partition q(n, Proc::P);
  // S: a block inside R's band.
  std::int64_t sLeft = counts[procSlot(Proc::S)];
  for (int i = 4; i < n && sLeft > 0; ++i)
    for (int j = 4; j < 8 && sLeft > 0; ++j) {
      q.set(i, j, Proc::S);
      --sLeft;
    }
  std::int64_t rLeft = counts[procSlot(Proc::R)];
  for (int i = 2; i < n && rLeft > 0; ++i)
    for (int j = 2; j < 10 && rLeft > 0; ++j) {
      if (q.at(i, j) != Proc::P) continue;
      q.set(i, j, Proc::R);
      --rLeft;
    }
  ASSERT_EQ(rLeft, 0);
  ASSERT_EQ(sLeft, 0);

  auto reduced = q;
  const auto result = reduceToArchetypeA(reduced, ratio);
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->vocAfter, result->vocBefore);
  EXPECT_EQ(reduced.volumeOfCommunication(), result->vocAfter);
  EXPECT_EQ(classifyArchetype(reduced).archetype, Archetype::A);
  for (Proc x : kAllProcs) EXPECT_EQ(reduced.count(x), q.count(x));
}

// Paper Thms 8.2–8.4 as an executable property: every condensed DFA output,
// whatever its archetype, admits an Archetype A canonical candidate with VoC
// no larger.
class ReducePropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(ReducePropertyTest, CondensedShapesReduceToCandidates) {
  const auto [ratioStr, seed] = GetParam();
  const auto ratio = Ratio::parse(ratioStr);
  Rng rng(seed);
  for (int run = 0; run < 4; ++run) {
    const Schedule schedule = Schedule::random(rng);
    auto result = runDfa(randomPartition(30, ratio, rng), schedule, {});
    auto reduced = result.final;
    const auto reduction = reduceToArchetypeA(reduced, ratio);
    ASSERT_TRUE(reduction.has_value())
        << "no canonical candidate matches VoC of condensed shape\n"
        << toAscii(result.final);
    EXPECT_LE(reduction->vocAfter, result.final.volumeOfCommunication());
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperRatios, ReducePropertyTest,
    ::testing::Combine(::testing::Values("2:1:1", "4:1:1", "5:2:1", "10:1:1",
                                         "5:4:1"),
                       ::testing::Values(101u, 202u)));

}  // namespace
}  // namespace pushpart
