#include "shapes/archetype.hpp"

#include <gtest/gtest.h>

#include "dfa/dfa.hpp"
#include "grid/builder.hpp"

namespace pushpart {
namespace {

TEST(ArchetypeTest, DisjointRectanglesAreA) {
  const auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "PPSS\n"
      "PPSS\n");
  const auto info = classifyArchetype(q);
  EXPECT_EQ(info.archetype, Archetype::A);
  EXPECT_FALSE(info.rectsOverlap);
  EXPECT_EQ(info.rCorners, 4);
  EXPECT_EQ(info.sCorners, 4);
}

TEST(ArchetypeTest, SquareCornerIsA) {
  const auto q = fromAscii(
      "RRPPPP\n"
      "RRPPPP\n"
      "PPPPPP\n"
      "PPPPPP\n"
      "PPPPSS\n"
      "PPPPSS\n");
  EXPECT_EQ(classifyArchetype(q).archetype, Archetype::A);
}

TEST(ArchetypeTest, LWrappedAroundRectangleIsB) {
  // R is an L with 6 corners; S a rectangle; enclosing rects overlap.
  const auto q = fromAscii(
      "RRPPPP\n"
      "RRPPPP\n"
      "RRSSPP\n"
      "RRSSPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  // R's rect rows 0..3 cols 0..1; S rows 2..3 cols 2..3 — no overlap, both
  // rectangles → actually A. Build a true B instead: R wraps around S's side.
  (void)q;
  const auto b = fromAscii(
      "RRRRPP\n"
      "RRRRPP\n"
      "RRSSPP\n"
      "RRSSPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  const auto info = classifyArchetype(b);
  EXPECT_EQ(info.archetype, Archetype::B) << info.str();
  EXPECT_TRUE(info.rectsOverlap);
  EXPECT_EQ(info.rCorners, 6);
  EXPECT_EQ(info.sCorners, 4);
}

TEST(ArchetypeTest, InterlockIsC) {
  // Neither R nor S rectangular; their union is a rectangle (paper §VII-F).
  const auto q = fromAscii(
      "RRRPPP\n"
      "RRSPPP\n"
      "RSSPPP\n"
      "SSSPPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  const auto info = classifyArchetype(q);
  EXPECT_EQ(info.archetype, Archetype::C) << info.str();
  EXPECT_TRUE(info.rectsOverlap);
  EXPECT_FALSE(info.rRectangular);
  EXPECT_FALSE(info.sRectangular);
  EXPECT_GE(info.rCorners, 6);
  EXPECT_GE(info.sCorners, 6);
}

TEST(ArchetypeTest, SurroundIsD) {
  const auto q = fromAscii(
      "RRRRPP\n"
      "RSSRPP\n"
      "RSSRPP\n"
      "RRRRPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  const auto info = classifyArchetype(q);
  EXPECT_EQ(info.archetype, Archetype::D) << info.str();
  EXPECT_TRUE(info.surround);
  EXPECT_EQ(info.sCorners, 4);
  EXPECT_EQ(info.rCorners, 8);
}

TEST(ArchetypeTest, SurroundWithRInsideSIsD) {
  const auto q = fromAscii(
      "SSSSPP\n"
      "SRRSPP\n"
      "SRRSPP\n"
      "SSSSPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  EXPECT_EQ(classifyArchetype(q).archetype, Archetype::D);
}

TEST(ArchetypeTest, EmptyProcessorIsUnknown) {
  Partition q(4);
  q.set(0, 0, Proc::R);  // S absent
  EXPECT_EQ(classifyArchetype(q).archetype, Archetype::Unknown);
}

TEST(ArchetypeTest, DisjointNonRectangleIsUnknown) {
  // R has two short rows — not asymptotically rectangular, no overlap.
  const auto q = fromAscii(
      "RPPPPP\n"
      "RRPPPP\n"
      "RRRPPP\n"
      "PPPPPP\n"
      "PPPPSS\n"
      "PPPPSS\n");
  EXPECT_EQ(classifyArchetype(q).archetype, Archetype::Unknown);
}

TEST(ArchetypeTest, AsymptoticRaggedEdgesStillClassifyA) {
  // Integer-granularity candidates have one partial row; still Archetype A.
  const auto q = fromAscii(
      "RRPPPP\n"
      "RRRPPP\n"
      "RRRPPP\n"
      "PPPPPP\n"
      "PPPSSS\n"
      "PPPSSS\n");
  EXPECT_EQ(classifyArchetype(q).archetype, Archetype::A);
}

// The paper's central experimental claim (Postulate 1): every condensed DFA
// output classifies into A–D — no Unknown shapes survive.
class DfaArchetypeCoverageTest
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(DfaArchetypeCoverageTest, CondensedOutputsClassify) {
  const auto [ratioStr, seed] = GetParam();
  const auto ratio = Ratio::parse(ratioStr);
  Rng rng(seed);
  for (int run = 0; run < 6; ++run) {
    const Schedule schedule = Schedule::random(rng);
    auto q0 = randomPartition(30, ratio, rng);
    const auto result = runDfa(std::move(q0), schedule, {});
    const auto info = classifyArchetype(result.final);
    EXPECT_NE(info.archetype, Archetype::Unknown)
        << "ratio=" << ratioStr << " seed=" << seed << " run=" << run << "\n"
        << info.str() << "\n"
        << toAscii(result.final);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperRatios, DfaArchetypeCoverageTest,
    ::testing::Combine(::testing::Values("2:1:1", "3:1:1", "5:2:1", "10:1:1",
                                         "2:2:1", "5:4:1"),
                       ::testing::Values(11u, 29u)));

}  // namespace
}  // namespace pushpart
