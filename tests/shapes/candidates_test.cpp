#include "shapes/candidates.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "grid/builder.hpp"
#include "shapes/archetype.hpp"
#include "shapes/corners.hpp"

namespace pushpart {
namespace {

TEST(CandidateNameTest, RoundTrips) {
  for (CandidateShape s : kAllCandidates)
    EXPECT_EQ(candidateFromName(candidateName(s)), s);
  EXPECT_THROW(candidateFromName("Bogus"), std::invalid_argument);
}

TEST(Theorem91Test, SquareCornerFeasibilityBoundary) {
  // Thm 9.1: both squares fit iff P_r > 2√(R_r S_r). With R_r = S_r = 1 the
  // boundary is P_r = 2.
  const int n = 120;
  EXPECT_FALSE(candidateFeasible(CandidateShape::kSquareCorner, n,
                                 Ratio{1.2, 1, 1}));
  EXPECT_TRUE(candidateFeasible(CandidateShape::kSquareCorner, n,
                                Ratio{3, 1, 1}));
  EXPECT_TRUE(candidateFeasible(CandidateShape::kSquareCorner, n,
                                Ratio{10, 1, 1}));
  // With R_r = 4, S_r = 1 the continuous boundary is P_r = 4; the integer
  // construction admits the boundary itself (the squares exactly tile the
  // edge) but not below it.
  EXPECT_FALSE(candidateFeasible(CandidateShape::kSquareCorner, n,
                                 Ratio{3.5, 4, 1}));
  EXPECT_TRUE(candidateFeasible(CandidateShape::kSquareCorner, n,
                                Ratio{7, 4, 1}));
}

TEST(Theorem91Test, ContinuousBoundaryMatchesConstructiveFeasibility) {
  // Sweep P_r and compare the constructive integer test against the paper's
  // continuous condition; they may only disagree in a narrow rounding band.
  const int n = 200;
  for (double pr = 1.0; pr <= 6.0; pr += 0.25) {
    const Ratio ratio{pr, 1, 1};
    const bool continuous = pr > 2.0 * std::sqrt(ratio.r * ratio.s);
    const bool constructive =
        candidateFeasible(CandidateShape::kSquareCorner, n, ratio);
    if (std::fabs(pr - 2.0) > 0.3) {
      EXPECT_EQ(constructive, continuous) << "P_r=" << pr;
    }
  }
}

TEST(RectangleCornerSplitTest, MatchesClosedForm) {
  // x = √R_r / (√R_r + √S_r).
  EXPECT_DOUBLE_EQ(rectangleCornerSplit(Ratio{2, 1, 1}), 0.5);
  EXPECT_NEAR(rectangleCornerSplit(Ratio{2, 4, 1}), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(rectangleCornerSplit(Ratio{5, 9, 4}), 3.0 / 5.0, 1e-12);
}

using CandidateParam = std::tuple<CandidateShape, const char*, int>;

class CandidateConstructionTest
    : public ::testing::TestWithParam<CandidateParam> {};

TEST_P(CandidateConstructionTest, ExactCountsAndArchetypeA) {
  const auto [shape, ratioStr, n] = GetParam();
  const auto ratio = Ratio::parse(ratioStr);
  if (!candidateFeasible(shape, n, ratio)) GTEST_SKIP() << "infeasible";
  const auto q = makeCandidate(shape, n, ratio);
  const auto want = ratio.elementCounts(n);
  for (Proc x : kAllProcs)
    EXPECT_EQ(q.count(x), want[procSlot(x)]) << procName(x);
  // All candidates are Archetype A: R and S asymptotically rectangular.
  EXPECT_TRUE(isAsymptoticallyRectangular(q, Proc::R));
  EXPECT_TRUE(isAsymptoticallyRectangular(q, Proc::S));
  const auto info = classifyArchetype(q);
  EXPECT_EQ(info.archetype, Archetype::A) << info.str() << "\n" << toAscii(q);
  q.validateCounters();
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, CandidateConstructionTest,
    ::testing::Combine(::testing::ValuesIn(kAllCandidates),
                       ::testing::Values("2:1:1", "3:1:1", "5:1:1", "10:1:1",
                                         "3:2:1", "5:2:1", "5:4:1"),
                       ::testing::Values(40, 100)));

TEST(CandidateGeometryTest, SquareCornerPlacesOppositeCorners) {
  const int n = 60;
  const Ratio ratio{10, 1, 1};
  const auto q = makeCandidate(CandidateShape::kSquareCorner, n, ratio);
  const Rect r = q.enclosingRect(Proc::R);
  const Rect s = q.enclosingRect(Proc::S);
  EXPECT_EQ(r.rowBegin, 0);
  EXPECT_EQ(r.colBegin, 0);
  EXPECT_EQ(s.rowEnd, n);
  EXPECT_EQ(s.colEnd, n);
  // Disjoint rows and columns (the Square-Corner VoC structure).
  EXPECT_LE(r.rowEnd, s.rowBegin);
  EXPECT_LE(r.colEnd, s.colBegin);
  // Near-squares.
  EXPECT_LE(std::abs(r.width() - r.height()), 1);
  EXPECT_LE(std::abs(s.width() - s.height()), 1);
}

TEST(CandidateGeometryTest, SquareRectangleHasFullHeightStrip) {
  const int n = 60;
  const auto q =
      makeCandidate(CandidateShape::kSquareRectangle, n, Ratio{5, 2, 1});
  const Rect r = q.enclosingRect(Proc::R);
  EXPECT_EQ(r.rowBegin, 0);
  EXPECT_EQ(r.rowEnd, n);
  EXPECT_EQ(r.colBegin, 0);
  const Rect s = q.enclosingRect(Proc::S);
  EXPECT_LE(std::abs(s.width() - s.height()), 1);  // S is a near-square
}

TEST(CandidateGeometryTest, BlockRectangleSharesEqualHeights) {
  const int n = 60;
  const auto q =
      makeCandidate(CandidateShape::kBlockRectangle, n, Ratio{5, 2, 1});
  const Rect r = q.enclosingRect(Proc::R);
  const Rect s = q.enclosingRect(Proc::S);
  // Same strip rows at the bottom of the matrix, spanning the full width.
  EXPECT_EQ(r.rowEnd, n);
  EXPECT_EQ(s.rowEnd, n);
  EXPECT_LE(std::abs(r.height() - s.height()), 1);
  EXPECT_EQ(r.colBegin, 0);
  EXPECT_EQ(s.colEnd, n);
}

TEST(CandidateGeometryTest, TraditionalRectangleStacksInOneStrip) {
  const int n = 60;
  const auto q =
      makeCandidate(CandidateShape::kTraditionalRectangle, n, Ratio{5, 2, 1});
  const Rect r = q.enclosingRect(Proc::R);
  const Rect s = q.enclosingRect(Proc::S);
  // Same column band at the right edge; R above S.
  EXPECT_EQ(r.colEnd, n);
  EXPECT_EQ(s.colEnd, n);
  EXPECT_EQ(r.rowBegin, 0);
  EXPECT_EQ(s.rowEnd, n);
  EXPECT_LE(r.rowEnd, s.rowBegin + 1);  // at most the shared partial row
  // P keeps the full-height block left of the strip.
  for (int j = 0; j < s.colBegin; ++j) EXPECT_EQ(q.colCount(Proc::P, j), n);
}

TEST(CandidateGeometryTest, LRectangleLeavesPAnL) {
  const int n = 60;
  const auto q = makeCandidate(CandidateShape::kLRectangle, n, Ratio{5, 2, 1});
  const Rect r = q.enclosingRect(Proc::R);
  EXPECT_EQ(r.rowBegin, 0);
  EXPECT_EQ(r.rowEnd, n);
  const Rect s = q.enclosingRect(Proc::S);
  EXPECT_EQ(s.rowEnd, n);
  EXPECT_EQ(s.colEnd, n);
  // S spans all columns right of R's strip.
  EXPECT_GE(s.colBegin, r.colEnd - 1);
}

TEST(CandidateTest, InfeasibleConstructionThrows) {
  EXPECT_THROW(
      makeCandidate(CandidateShape::kSquareCorner, 100, Ratio{1.1, 1, 1}),
      std::invalid_argument);
}

TEST(CandidateTest, SquareCornerBeatsBlockRectangleAtHighHeterogeneity) {
  // The headline comparison (paper Fig. 13/14): for highly heterogeneous
  // ratios the Square-Corner communicates less than the Block-Rectangle.
  const int n = 100;
  const Ratio high{10, 1, 1};
  const auto sc = makeCandidate(CandidateShape::kSquareCorner, n, high);
  const auto br = makeCandidate(CandidateShape::kBlockRectangle, n, high);
  EXPECT_LT(sc.volumeOfCommunication(), br.volumeOfCommunication());
}

TEST(CandidateTest, BlockRectangleWinsAtLowHeterogeneity) {
  // Near-homogeneous ratios favour rectangular partitions (paper Fig. 14:
  // Block-Rectangle is better until heterogeneity grows).
  const int n = 102;
  const Ratio low{2.5, 1, 1};
  ASSERT_TRUE(candidateFeasible(CandidateShape::kSquareCorner, n, low));
  const auto sc = makeCandidate(CandidateShape::kSquareCorner, n, low);
  const auto br = makeCandidate(CandidateShape::kBlockRectangle, n, low);
  EXPECT_GT(sc.volumeOfCommunication(), br.volumeOfCommunication());
}

}  // namespace
}  // namespace pushpart
