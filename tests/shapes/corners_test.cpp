#include "shapes/corners.hpp"

#include <gtest/gtest.h>

#include "grid/builder.hpp"

namespace pushpart {
namespace {

TEST(CornerCountTest, RectangleHasFourCorners) {
  const auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "PPPP\n"
      "PPPP\n");
  EXPECT_EQ(cornerCount(q, Proc::R), 4);
}

TEST(CornerCountTest, SingleCellHasFourCorners) {
  const auto q = fromAscii(
      "PPP\n"
      "PRP\n"
      "PPP\n");
  EXPECT_EQ(cornerCount(q, Proc::R), 4);
}

TEST(CornerCountTest, FullGridHasFourCorners) {
  Partition q(5);
  EXPECT_EQ(cornerCount(q, Proc::P), 4);
}

TEST(CornerCountTest, LShapeHasSixCorners) {
  const auto q = fromAscii(
      "RPPP\n"
      "RPPP\n"
      "RRRP\n"
      "PPPP\n");
  EXPECT_EQ(cornerCount(q, Proc::R), 6);
}

TEST(CornerCountTest, SurroundWrapHasEightCorners) {
  // R wraps S on all sides (paper Archetype D ideal drawing).
  const auto q = fromAscii(
      "RRRRP\n"
      "RSSRP\n"
      "RSSRP\n"
      "RRRRP\n"
      "PPPPP\n");
  EXPECT_EQ(cornerCount(q, Proc::R), 8);
  EXPECT_EQ(cornerCount(q, Proc::S), 4);
}

TEST(CornerCountTest, DiagonalTouchCountsBothPinchCorners) {
  const auto q = fromAscii(
      "RPP\n"
      "PRP\n"
      "PPP\n");
  // Two unit squares touching diagonally: 4 + 4 corners, the shared vertex
  // contributing 2.
  EXPECT_EQ(cornerCount(q, Proc::R), 8);
}

TEST(CornerCountTest, AbsentProcessorHasNoCorners) {
  Partition q(4);
  EXPECT_EQ(cornerCount(q, Proc::R), 0);
}

TEST(CornerCountTest, TwoDisjointRectanglesSumCorners) {
  const auto q = fromAscii(
      "RRPPP\n"
      "RRPPP\n"
      "PPPPP\n"
      "PPPRR\n"
      "PPPRR\n");
  EXPECT_EQ(cornerCount(q, Proc::R), 8);
}

TEST(IsRectangleTest, ExactRectangles) {
  const auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "PPSP\n"
      "PPPP\n");
  EXPECT_TRUE(isRectangle(q, Proc::R));
  EXPECT_TRUE(isRectangle(q, Proc::S));
  EXPECT_FALSE(isRectangle(q, Proc::P));  // P is an L around them
}

TEST(IsRectangleTest, FalseForMissingCell) {
  const auto q = fromAscii(
      "RRPP\n"
      "RPPP\n"
      "PPPP\n"
      "PPPP\n");
  EXPECT_FALSE(isRectangle(q, Proc::R));
}

TEST(IsRectangleTest, FalseForAbsentProcessor) {
  Partition q(3);
  EXPECT_FALSE(isRectangle(q, Proc::S));
}

TEST(AsymptoticRectTest, ExactRectangleQualifies) {
  const auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "PPPP\n"
      "PPPP\n");
  EXPECT_TRUE(isAsymptoticallyRectangular(q, Proc::R));
}

TEST(AsymptoticRectTest, PartialTopRowQualifies) {
  // Paper Fig. 3 left: one edge row shorter than the rectangle.
  const auto q = fromAscii(
      "RRPP\n"
      "RRRP\n"
      "RRRP\n"
      "PPPP\n");
  EXPECT_TRUE(isAsymptoticallyRectangular(q, Proc::R));
}

TEST(AsymptoticRectTest, PartialEdgeColumnQualifies) {
  const auto q = fromAscii(
      "RRRP\n"
      "RRRP\n"
      "RRPP\n"
      "RRPP\n");
  EXPECT_TRUE(isAsymptoticallyRectangular(q, Proc::R));
}

TEST(AsymptoticRectTest, TwoShortRowsDisqualify) {
  // Paper Fig. 3 right: two rows shorter than the enclosing rectangle.
  const auto q = fromAscii(
      "RPPP\n"
      "RRPP\n"
      "RRRP\n"
      "PPPP\n");
  EXPECT_FALSE(isAsymptoticallyRectangular(q, Proc::R));
}

TEST(AsymptoticRectTest, InteriorHoleDisqualifies) {
  const auto q = fromAscii(
      "RRR\n"
      "RPR\n"
      "RRR\n");
  EXPECT_FALSE(isAsymptoticallyRectangular(q, Proc::R));
}

TEST(AsymptoticRectTest, AbsentProcessorDisqualifies) {
  Partition q(3);
  EXPECT_FALSE(isAsymptoticallyRectangular(q, Proc::R));
}

TEST(ConnectedComponentsTest, CountsBlobs) {
  const auto q = fromAscii(
      "RRPPP\n"
      "RRPPP\n"
      "PPPPP\n"
      "PPPRR\n"
      "PPPRR\n");
  EXPECT_EQ(connectedComponents(q, Proc::R), 2);
  EXPECT_EQ(connectedComponents(q, Proc::P), 1);
  EXPECT_EQ(connectedComponents(q, Proc::S), 0);
}

TEST(ConnectedComponentsTest, DiagonalIsNotConnected) {
  const auto q = fromAscii(
      "RP\n"
      "PR\n");
  EXPECT_EQ(connectedComponents(q, Proc::R), 2);
}

TEST(ConnectedComponentsTest, SingleRegion) {
  const auto q = fromAscii(
      "RPPP\n"
      "RPPP\n"
      "RRRP\n"
      "PPPP\n");
  EXPECT_EQ(connectedComponents(q, Proc::R), 1);
}

}  // namespace
}  // namespace pushpart
