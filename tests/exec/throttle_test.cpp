#include "exec/throttle.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace pushpart {
namespace {

TEST(ThrottleTest, FullSpeedNeverSleeps) {
  Throttle t(1.0);
  Stopwatch sw;
  for (int i = 0; i < 100; ++i) t.charge(0.01);
  EXPECT_DOUBLE_EQ(t.sleptSeconds(), 0.0);
  EXPECT_LT(sw.seconds(), 0.1);  // no real sleeping happened
}

TEST(ThrottleTest, HalfSpeedSleepsAsMuchAsItWorks) {
  Throttle t(0.5);
  t.charge(0.02);
  // After 0.02 s of compute at 50% duty, elapsed should be 0.04 s.
  EXPECT_NEAR(t.sleptSeconds(), 0.02, 0.005);
}

TEST(ThrottleTest, QuarterSpeedSleepsThreeTimesTheWork) {
  Throttle t(0.25);
  t.charge(0.01);
  EXPECT_NEAR(t.sleptSeconds(), 0.03, 0.005);
}

TEST(ThrottleTest, SleepAccumulatesAcrossCharges) {
  Throttle t(0.5);
  for (int i = 0; i < 4; ++i) t.charge(0.005);
  EXPECT_NEAR(t.sleptSeconds(), 0.02, 0.01);
}

TEST(ThrottleTest, ActualWallClockMatchesDutyCycle) {
  Throttle t(0.5);
  Stopwatch sw;
  t.charge(0.02);
  // Wall time for the charge call ≈ the sleep it inserted.
  EXPECT_GE(sw.seconds(), 0.015);
}

TEST(ThrottleTest, InvalidFractionsRejected) {
  EXPECT_THROW(Throttle(0.0), CheckError);
  EXPECT_THROW(Throttle(-0.5), CheckError);
  EXPECT_THROW(Throttle(1.5), CheckError);
}

TEST(ThrottleTest, NegativeChargeRejected) {
  Throttle t(0.5);
  EXPECT_THROW(t.charge(-1.0), CheckError);
}

}  // namespace
}  // namespace pushpart
