#include "exec/throttle.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace pushpart {
namespace {

TEST(ThrottleTest, FullSpeedNeverSleeps) {
  Throttle t(1.0);
  Stopwatch sw;
  for (int i = 0; i < 100; ++i) t.charge(0.01);
  EXPECT_DOUBLE_EQ(t.sleptSeconds(), 0.0);
  EXPECT_LT(sw.seconds(), 0.1);  // no real sleeping happened
}

TEST(ThrottleTest, HalfSpeedSleepsAsMuchAsItWorks) {
  Throttle t(0.5);
  t.charge(0.02);
  // After 0.02 s of compute at 50% duty, elapsed should be 0.04 s.
  EXPECT_NEAR(t.sleptSeconds(), 0.02, 0.005);
}

TEST(ThrottleTest, QuarterSpeedSleepsThreeTimesTheWork) {
  Throttle t(0.25);
  t.charge(0.01);
  EXPECT_NEAR(t.sleptSeconds(), 0.03, 0.005);
}

TEST(ThrottleTest, SleepAccumulatesAcrossCharges) {
  Throttle t(0.5);
  for (int i = 0; i < 4; ++i) t.charge(0.005);
  EXPECT_NEAR(t.sleptSeconds(), 0.02, 0.01);
}

TEST(ThrottleTest, ActualWallClockMatchesDutyCycle) {
  Throttle t(0.5);
  Stopwatch sw;
  t.charge(0.02);
  // Wall time for the charge call ≈ the sleep it inserted.
  EXPECT_GE(sw.seconds(), 0.015);
}

TEST(ThrottleTest, FullSpeedNeverSleepsEvenOnManyTinyCharges) {
  // fraction = 1.0 must short-circuit before any sleep arithmetic: thousands
  // of sub-quantum charges still cost no wall time and no slept seconds.
  Throttle t(1.0);
  Stopwatch sw;
  for (int i = 0; i < 5000; ++i) t.charge(1e-6);
  EXPECT_DOUBLE_EQ(t.sleptSeconds(), 0.0);
  EXPECT_LT(sw.seconds(), 0.1);
}

TEST(ThrottleTest, SubQuantumChargesAccumulateUntilTheDebtIsDue) {
  // Individually negligible charges must add up to the same sleep debt as
  // one lump charge of the same total.
  Throttle many(0.5);
  for (int i = 0; i < 40; ++i) many.charge(5e-4);  // 0.02 s in total
  Throttle lump(0.5);
  lump.charge(0.02);
  EXPECT_NEAR(many.sleptSeconds(), lump.sleptSeconds(), 0.01);
  EXPECT_NEAR(many.sleptSeconds(), 0.02, 0.01);
}

TEST(ThrottleTest, SleptSecondsIsMonotoneNonDecreasing) {
  Throttle t(0.25);
  double last = 0.0;
  for (int i = 0; i < 20; ++i) {
    t.charge(5e-4);
    const double now = t.sleptSeconds();
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_GT(last, 0.0);
}

TEST(ThrottleTest, ZeroChargeIsANoOp) {
  Throttle t(0.5);
  t.charge(0.0);
  EXPECT_DOUBLE_EQ(t.sleptSeconds(), 0.0);
}

TEST(ThrottleTest, InvalidFractionsRejected) {
  EXPECT_THROW(Throttle(0.0), CheckError);
  EXPECT_THROW(Throttle(-0.5), CheckError);
  EXPECT_THROW(Throttle(1.5), CheckError);
}

TEST(ThrottleTest, NegativeChargeRejected) {
  Throttle t(0.5);
  EXPECT_THROW(t.charge(-1.0), CheckError);
}

}  // namespace
}  // namespace pushpart
