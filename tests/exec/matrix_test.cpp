#include "exec/matrix.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace pushpart {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(3, 1.5);
  EXPECT_EQ(m.n(), 3);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 1.5);
  m.at(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), -4.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 1.5);
}

TEST(MatrixTest, RandomMatrixInRange) {
  Rng rng(1);
  const Matrix m = randomMatrix(8, rng);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) {
      EXPECT_GE(m.at(i, j), -1.0);
      EXPECT_LT(m.at(i, j), 1.0);
    }
}

TEST(MatrixTest, RandomMatrixDeterministic) {
  Rng a(7), b(7);
  const Matrix x = randomMatrix(6, a);
  const Matrix y = randomMatrix(6, b);
  EXPECT_DOUBLE_EQ(maxAbsDiff(x, y), 0.0);
}

TEST(MultiplySerialTest, IdentityIsNeutral) {
  Rng rng(2);
  const Matrix a = randomMatrix(5, rng);
  Matrix eye(5, 0.0);
  for (int i = 0; i < 5; ++i) eye.at(i, i) = 1.0;
  EXPECT_LT(maxAbsDiff(multiplySerial(a, eye), a), 1e-12);
  EXPECT_LT(maxAbsDiff(multiplySerial(eye, a), a), 1e-12);
}

TEST(MultiplySerialTest, KnownSmallProduct) {
  Matrix a(2), b(2);
  a.at(0, 0) = 1; a.at(0, 1) = 2;
  a.at(1, 0) = 3; a.at(1, 1) = 4;
  b.at(0, 0) = 5; b.at(0, 1) = 6;
  b.at(1, 0) = 7; b.at(1, 1) = 8;
  const Matrix c = multiplySerial(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(MultiplySerialTest, SizeMismatchRejected) {
  Matrix a(3), b(4);
  EXPECT_THROW(multiplySerial(a, b), CheckError);
}

TEST(MaxAbsDiffTest, FindsWorstEntry) {
  Matrix x(2, 0.0), y(2, 0.0);
  y.at(1, 0) = 0.25;
  y.at(0, 1) = -0.5;
  EXPECT_DOUBLE_EQ(maxAbsDiff(x, y), 0.5);
}

}  // namespace
}  // namespace pushpart
