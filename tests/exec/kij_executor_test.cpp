#include "exec/kij_executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "grid/builder.hpp"
#include "shapes/candidates.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

ExecOptions fastOptions(const Ratio& ratio) {
  ExecOptions opts;
  opts.machine.ratio = ratio;
  opts.machine.sendElementSeconds = 8e-9;
  opts.verify = true;
  opts.seed = 42;
  return opts;
}

TEST(KijExecutorTest, ResultMatchesSerialReference) {
  Rng rng(4);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(48, ratio, rng);
  const auto result = runParallelMMM(Algo::kSCB, q, fastOptions(ratio));
  EXPECT_TRUE(result.verified);
  // Same input, same kij dot products — exact agreement modulo FP
  // reassociation (none here: identical accumulation order per element).
  EXPECT_LT(result.maxAbsError, 1e-9);
}

TEST(KijExecutorTest, CandidateShapesComputeCorrectly) {
  const Ratio ratio{5, 2, 1};
  for (CandidateShape shape :
       {CandidateShape::kBlockRectangle, CandidateShape::kSquareRectangle,
        CandidateShape::kTraditionalRectangle}) {
    const auto q = makeCandidate(shape, 40, ratio);
    const auto result = runParallelMMM(Algo::kPCB, q, fastOptions(ratio));
    EXPECT_LT(result.maxAbsError, 1e-9) << candidateName(shape);
  }
}

TEST(KijExecutorTest, CommElementsMatchVoC) {
  Rng rng(5);
  const Ratio ratio{3, 1, 1};
  const auto q = randomPartition(32, ratio, rng);
  const auto result = runParallelMMM(Algo::kSCB, q, fastOptions(ratio));
  EXPECT_EQ(result.commElements, q.volumeOfCommunication());
}

TEST(KijExecutorTest, PcbCommNoSlowerPhaseThanScb) {
  Rng rng(6);
  const Ratio ratio{3, 1, 1};
  const auto q = randomPartition(32, ratio, rng);
  const auto scb = runParallelMMM(Algo::kSCB, q, fastOptions(ratio));
  const auto pcb = runParallelMMM(Algo::kPCB, q, fastOptions(ratio));
  EXPECT_LE(pcb.commSeconds, scb.commSeconds + 1e-15);
}

TEST(KijExecutorTest, OverlapAlgorithmsRejected) {
  Partition q(8);
  EXPECT_THROW(runParallelMMM(Algo::kSCO, q, fastOptions(Ratio{2, 1, 1})),
               std::invalid_argument);
  EXPECT_THROW(runParallelMMM(Algo::kPIO, q, fastOptions(Ratio{2, 1, 1})),
               std::invalid_argument);
}

TEST(KijExecutorTest, ThrottlingSlowsWallClock) {
  // Same partition, same work; an 8:1:1 ratio forces R and S to 1/8 duty
  // cycle, so wall time must exceed an unthrottled (1:1:1) run. Taking the
  // minimum of several runs suppresses scheduler noise at millisecond scale.
  const int n = 224;  // enough work that throttling dwarfs scheduler noise
  Rng rng(7);
  const auto balanced = randomPartition(n, Ratio{1, 1, 1}, rng);
  auto even = fastOptions(Ratio{1, 1, 1});
  even.verify = false;
  auto skewed = fastOptions(Ratio{8, 1, 1});
  skewed.verify = false;

  double fast = 1e9, slow = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    fast = std::min(fast, runParallelMMM(Algo::kPCB, balanced, even).wallSeconds);
    slow = std::min(slow, runParallelMMM(Algo::kPCB, balanced, skewed).wallSeconds);
  }
  EXPECT_GT(slow, fast);
}

TEST(KijExecutorTest, RatioSizedPartitionBalancesThrottledWorkers) {
  // When the partition matches the speed ratio, per-worker busy times divide
  // by speed and all throttled wall times roughly agree — heterogeneity
  // works as designed.
  const Ratio ratio{4, 2, 1};
  const auto q = makeCandidate(CandidateShape::kBlockRectangle, 160, ratio);
  auto opts = fastOptions(ratio);
  opts.verify = false;
  const auto result = runParallelMMM(Algo::kPCB, q, opts);
  // P does 4/7 of the work at full speed; S does 1/7 at quarter speed.
  // Busy (pure compute) time of P should be ≈ 4× S's; allow generous noise
  // margin (sub-second timings on a shared machine).
  const double pBusy = result.computeSeconds[procSlot(Proc::P)];
  const double sBusy = result.computeSeconds[procSlot(Proc::S)];
  EXPECT_GT(pBusy, sBusy * 1.5);
}

TEST(KijExecutorFaultTest, DisabledPlanLeavesTheRunUntouched) {
  Rng rng(9);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(24, ratio, rng);
  auto opts = fastOptions(ratio);
  const auto base = runParallelMMM(Algo::kSCB, q, opts);
  opts.faults.seed = 123;  // still disabled: no faults configured
  const auto again = runParallelMMM(Algo::kSCB, q, opts);
  EXPECT_DOUBLE_EQ(again.commSeconds, base.commSeconds);
  EXPECT_EQ(again.commDropsInjected, 0);
  EXPECT_EQ(again.commRetriesSent, 0);
  EXPECT_TRUE(again.commCompleted);
}

TEST(KijExecutorFaultTest, DropsForceRetriesAndExtendTheCommPhase) {
  Rng rng(10);
  const Ratio ratio{3, 1, 1};
  const auto q = randomPartition(32, ratio, rng);
  auto opts = fastOptions(ratio);
  const double baseline = runParallelMMM(Algo::kSCB, q, opts).commSeconds;
  opts.faults.seed = 3;
  opts.faults.dropProbability = 0.5;
  opts.retry.timeoutSeconds = 1e-6;
  opts.retry.backoffSeconds = 1e-7;
  opts.retry.backoffMaxSeconds = 1e-5;
  const auto faulty = runParallelMMM(Algo::kSCB, q, opts);
  EXPECT_GT(faulty.commDropsInjected, 0);
  EXPECT_GT(faulty.commRetriesSent, 0);
  EXPECT_TRUE(faulty.commCompleted);
  EXPECT_GT(faulty.commSeconds, baseline);
  // The numerics run on real threads either way and stay exact.
  EXPECT_LT(faulty.maxAbsError, 1e-9);
}

TEST(KijExecutorFaultTest, FaultedRunsAreDeterministicInTheSeed) {
  Rng rng(11);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(24, ratio, rng);
  auto opts = fastOptions(ratio);
  opts.faults.seed = 17;
  opts.faults.dropProbability = 0.4;
  const auto a = runParallelMMM(Algo::kPCB, q, opts);
  const auto b = runParallelMMM(Algo::kPCB, q, opts);
  EXPECT_DOUBLE_EQ(a.commSeconds, b.commSeconds);
  EXPECT_EQ(a.commDropsInjected, b.commDropsInjected);
  EXPECT_EQ(a.commRetriesSent, b.commRetriesSent);
}

TEST(KijExecutorFaultTest, ExhaustedRetriesReportedButRunStillVerifies) {
  Rng rng(12);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(24, ratio, rng);
  auto opts = fastOptions(ratio);
  opts.faults.dropProbability = 1.0;
  opts.retry.maxAttempts = 2;
  const auto result = runParallelMMM(Algo::kSCB, q, opts);
  EXPECT_FALSE(result.commCompleted);
  EXPECT_LT(result.maxAbsError, 1e-9);
}

TEST(KijExecutorFaultTest, DeathPlansRejected) {
  Rng rng(13);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(16, ratio, rng);
  auto opts = fastOptions(ratio);
  opts.faults.death = ProcDeath{Proc::R, 0.0};
  EXPECT_THROW(runParallelMMM(Algo::kSCB, q, opts), CheckError);
}

TEST(KijExecutorTest, DeterministicInputs) {
  Rng rng(8);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(24, ratio, rng);
  const auto a = runParallelMMM(Algo::kSCB, q, fastOptions(ratio));
  const auto b = runParallelMMM(Algo::kSCB, q, fastOptions(ratio));
  EXPECT_EQ(a.commElements, b.commElements);
  EXPECT_DOUBLE_EQ(a.maxAbsError, b.maxAbsError);
}

}  // namespace
}  // namespace pushpart
