#include "nproc/npartition.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

TEST(NPartitionTest, FreshGridAllOnProcessorZero) {
  NPartition q(5, 4);
  EXPECT_EQ(q.procs(), 4);
  EXPECT_EQ(q.count(0), 25);
  for (NProcId p = 1; p < 4; ++p) EXPECT_EQ(q.count(p), 0);
  EXPECT_EQ(q.volumeOfCommunication(), 0);
}

TEST(NPartitionTest, BoundsChecked) {
  EXPECT_THROW(NPartition(0, 3), CheckError);
  EXPECT_THROW(NPartition(4, 1), CheckError);
  EXPECT_THROW(NPartition(4, 65), CheckError);
  NPartition q(4, 3);
  EXPECT_THROW(q.set(4, 0, 1), CheckError);
  EXPECT_THROW(q.set(0, 0, 3), CheckError);
  EXPECT_THROW(q.set(0, 0, -1), CheckError);
}

TEST(NPartitionTest, SetUpdatesCounters) {
  NPartition q(4, 4);
  q.set(1, 2, 3);
  EXPECT_EQ(q.at(1, 2), 3);
  EXPECT_EQ(q.count(3), 1);
  EXPECT_EQ(q.rowsUsed(3), 1);
  EXPECT_EQ(q.procsInRow(1), 2);
  EXPECT_EQ(q.volumeOfCommunication(), 8);
  q.validateCounters();
}

TEST(NPartitionTest, FourProcQuadrantsVoC) {
  // Four quadrants over four processors: every row and column has exactly
  // 2 owners → VoC = N·N + N·N.
  const int n = 8;
  NPartition q(n, 4);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      const NProcId p = static_cast<NProcId>((i >= n / 2) * 2 + (j >= n / 2));
      q.set(i, j, p);
    }
  EXPECT_EQ(q.volumeOfCommunication(), 2LL * n * n);
  for (NProcId p = 0; p < 4; ++p) {
    EXPECT_EQ(q.count(p), n * n / 4);
    EXPECT_TRUE(q.isAsymptoticallyRectangular(p));
  }
  q.validateCounters();
}

TEST(NPartitionTest, EnclosingRectPerProcessor) {
  NPartition q(6, 3);
  q.set(1, 1, 2);
  q.set(3, 4, 2);
  EXPECT_EQ(q.enclosingRect(2), (Rect{1, 4, 1, 5}));
  EXPECT_TRUE(q.enclosingRect(1).isEmpty());
}

TEST(NPartitionTest, AsymptoticRectangularity) {
  NPartition q(5, 3);
  for (int i = 1; i < 4; ++i)
    for (int j = 1; j < 4; ++j) q.set(i, j, 1);
  EXPECT_TRUE(q.isAsymptoticallyRectangular(1));
  q.set(1, 1, 0);  // partial top row
  EXPECT_TRUE(q.isAsymptoticallyRectangular(1));
  q.set(2, 2, 0);  // interior hole
  EXPECT_FALSE(q.isAsymptoticallyRectangular(1));
  EXPECT_FALSE(q.isAsymptoticallyRectangular(2));  // absent proc
}

TEST(NPartitionTest, HashAndEquality) {
  NPartition a(6, 3), b(6, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(0, 0, 2);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(NPartitionTest, RandomMutationKeepsCountersExact) {
  Rng rng(42);
  NPartition q(16, 6);
  for (int step = 0; step < 4000; ++step) {
    q.set(static_cast<int>(rng.below(16)), static_cast<int>(rng.below(16)),
          static_cast<NProcId>(rng.below(6)));
  }
  q.validateCounters();
}

class NPartitionProcCountTest : public ::testing::TestWithParam<int> {};

TEST_P(NPartitionProcCountTest, StripesAcrossKProcs) {
  const int k = GetParam();
  const int n = 2 * k;
  NPartition q(n, k);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) q.set(i, j, static_cast<NProcId>(j / 2 % k));
  q.validateCounters();
  // Columns single-owner, rows carry all k.
  EXPECT_EQ(q.volumeOfCommunication(), static_cast<std::int64_t>(n) * n * (k - 1));
}

INSTANTIATE_TEST_SUITE_P(ProcCounts, NPartitionProcCountTest,
                         ::testing::Values(2, 3, 4, 5, 8));

}  // namespace
}  // namespace pushpart
