#include "nproc/nshapes.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nproc/npush.hpp"
#include "support/check.hpp"

namespace pushpart {
namespace {

TEST(TwoProcShapeTest, StraightLineGeometry) {
  const int n = 60;
  const auto q = makeTwoProcCandidate(TwoProcShape::kStraightLine, n, 3.0);
  // Slow processor holds a full-height strip on the right.
  const Rect r = q.enclosingRect(1);
  EXPECT_EQ(r.rowBegin, 0);
  EXPECT_EQ(r.rowEnd, n);
  EXPECT_EQ(r.colEnd, n);
  EXPECT_TRUE(q.isAsymptoticallyRectangular(1));
  EXPECT_EQ(q.count(1), static_cast<std::int64_t>(n) * n / 4);
}

TEST(TwoProcShapeTest, SquareCornerGeometry) {
  const int n = 60;
  const auto q = makeTwoProcCandidate(TwoProcShape::kSquareCorner, n, 8.0);
  const Rect r = q.enclosingRect(1);
  EXPECT_EQ(r.rowEnd, n);
  EXPECT_EQ(r.colEnd, n);
  EXPECT_LE(std::abs(r.width() - r.height()), 1);
  EXPECT_TRUE(q.isAsymptoticallyRectangular(1));
}

TEST(TwoProcShapeTest, ExactCounts) {
  const int n = 50;
  for (double p : {1.0, 3.0, 8.0, 15.0}) {
    const auto slow = static_cast<std::int64_t>(
        std::floor(n * n / (p + 1.0)));
    for (TwoProcShape s :
         {TwoProcShape::kStraightLine, TwoProcShape::kSquareCorner,
          TwoProcShape::kRectangleCorner}) {
      const auto q = makeTwoProcCandidate(s, n, p);
      EXPECT_EQ(q.count(1), slow) << twoProcShapeName(s) << " p=" << p;
      EXPECT_EQ(q.count(0) + q.count(1), static_cast<std::int64_t>(n) * n);
    }
  }
}

TEST(TwoProcClosedFormTest, MatchesMeasuredVoC) {
  const int n = 200;
  for (double p : {1.0, 2.0, 3.0, 5.0, 10.0}) {
    for (TwoProcShape s :
         {TwoProcShape::kStraightLine, TwoProcShape::kSquareCorner,
          TwoProcShape::kRectangleCorner}) {
      const auto q = makeTwoProcCandidate(s, n, p);
      const double measured =
          static_cast<double>(q.volumeOfCommunication()) /
          (static_cast<double>(n) * n);
      EXPECT_NEAR(measured, twoProcClosedFormVoC(s, p), 4.0 / n + 0.01)
          << twoProcShapeName(s) << " p=" << p;
    }
  }
}

TEST(TwoProcClosedFormTest, ThreeToOneCrossover) {
  // The classical result the paper builds on: the Square-Corner beats the
  // Straight-Line exactly above P_r = 3.
  EXPECT_DOUBLE_EQ(kTwoProcCrossover, 3.0);
  EXPECT_GT(twoProcClosedFormVoC(TwoProcShape::kSquareCorner, 2.5),
            twoProcClosedFormVoC(TwoProcShape::kStraightLine, 2.5));
  EXPECT_NEAR(twoProcClosedFormVoC(TwoProcShape::kSquareCorner, 3.0),
              twoProcClosedFormVoC(TwoProcShape::kStraightLine, 3.0), 1e-12);
  EXPECT_LT(twoProcClosedFormVoC(TwoProcShape::kSquareCorner, 4.0),
            twoProcClosedFormVoC(TwoProcShape::kStraightLine, 4.0));
}

TEST(TwoProcClosedFormTest, CrossoverOnGrids) {
  const int n = 240;
  for (double p : {2.0, 5.0}) {
    const auto sc = makeTwoProcCandidate(TwoProcShape::kSquareCorner, n, p);
    const auto sl = makeTwoProcCandidate(TwoProcShape::kStraightLine, n, p);
    const bool scWins =
        sc.volumeOfCommunication() < sl.volumeOfCommunication();
    EXPECT_EQ(scWins, p > kTwoProcCrossover) << "p=" << p;
  }
}

TEST(TwoProcClosedFormTest, RectangleCornerAlwaysInferiorToSquare) {
  // AM–GM: w + h ≥ 2√(wh), equality only for the square — the paper's
  // "Rectangle-Corner always inferior" result. The theorem covers *corner*
  // rectangles (both dimensions < N); at low heterogeneity a wide-enough
  // aspect degenerates the rectangle into a straight line, which is a
  // different shape family.
  for (double p : {4.0, 6.0, 10.0}) {
    for (double aspect : {1.5, 2.0}) {
      const double share = 1.0 / (p + 1.0);
      ASSERT_LT(std::sqrt(share * aspect), 1.0) << "degenerate configuration";
      EXPECT_GT(twoProcClosedFormVoC(TwoProcShape::kRectangleCorner, p, aspect),
                twoProcClosedFormVoC(TwoProcShape::kSquareCorner, p));
    }
  }
  // And the degenerate wide rectangle legitimately becomes a straight line.
  EXPECT_DOUBLE_EQ(twoProcClosedFormVoC(TwoProcShape::kRectangleCorner, 1.0, 2.0),
                   twoProcClosedFormVoC(TwoProcShape::kStraightLine, 1.0));
}

TEST(TwoProcShapeTest, CandidatesArePushFixedPoints) {
  // Canonical two-processor shapes admit no strictly improving push.
  const int n = 40;
  const PushOptions strictOnly{.allowEqualVoC = false};
  for (double p : {3.0, 8.0}) {
    for (TwoProcShape s :
         {TwoProcShape::kStraightLine, TwoProcShape::kSquareCorner}) {
      auto q = makeTwoProcCandidate(s, n, p);
      for (Direction d : kAllDirections) {
        EXPECT_FALSE(tryPushN(q, 1, d, strictOnly).applied)
            << twoProcShapeName(s) << " " << directionName(d);
      }
    }
  }
}

TEST(TwoProcShapeTest, InvalidArgumentsRejected) {
  EXPECT_THROW(makeTwoProcCandidate(TwoProcShape::kSquareCorner, 40, 0.5),
               CheckError);
  EXPECT_THROW(
      makeTwoProcCandidate(TwoProcShape::kRectangleCorner, 40, 3.0, -1.0),
      CheckError);
}

}  // namespace
}  // namespace pushpart
