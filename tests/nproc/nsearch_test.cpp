#include "nproc/nsearch.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pushpart {
namespace {

TEST(NSpeedsTest, ParseAndValidate) {
  const auto s = NSpeeds::parse("8:4:2:1");
  ASSERT_EQ(s.speeds.size(), 4u);
  EXPECT_DOUBLE_EQ(s.total(), 15.0);
  EXPECT_TRUE(s.valid());
  EXPECT_EQ(s.str(), "8:4:2:1");
}

TEST(NSpeedsTest, ParseErrors) {
  EXPECT_THROW(NSpeeds::parse(""), std::invalid_argument);
  EXPECT_THROW(NSpeeds::parse("5"), std::invalid_argument);
  EXPECT_THROW(NSpeeds::parse("5:-1"), std::invalid_argument);
  EXPECT_THROW(NSpeeds::parse("5;2"), std::invalid_argument);
}

TEST(NSpeedsTest, FastestFirstRequired) {
  NSpeeds s;
  s.speeds = {2, 5, 1};
  EXPECT_FALSE(s.valid());
  s.speeds = {5, 5, 1};
  EXPECT_TRUE(s.valid());
}

TEST(NSpeedsTest, ElementCountsSumExactly) {
  for (const char* spec : {"4:1", "3:2:1", "8:4:2:1", "10:5:3:2:1"}) {
    const auto s = NSpeeds::parse(spec);
    for (int n : {10, 33, 100}) {
      const auto counts = s.elementCounts(n);
      std::int64_t sum = 0;
      for (auto c : counts) sum += c;
      EXPECT_EQ(sum, static_cast<std::int64_t>(n) * n) << spec << " n=" << n;
      // Fastest holds the plurality.
      for (std::size_t i = 1; i < counts.size(); ++i)
        EXPECT_GE(counts[0], counts[i]);
    }
  }
}

TEST(RandomNPartitionTest, RespectsCounts) {
  Rng rng(5);
  const auto speeds = NSpeeds::parse("8:4:2:1");
  const auto q = randomNPartition(30, speeds, rng);
  const auto counts = speeds.elementCounts(30);
  for (NProcId p = 0; p < 4; ++p)
    EXPECT_EQ(q.count(p), counts[static_cast<std::size_t>(p)]);
  q.validateCounters();
}

TEST(RandomNScheduleTest, CoversSlowProcsOnly) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const auto slots = randomNSchedule(5, rng);
    ASSERT_GE(slots.size(), 4u);   // each of 4 slow procs at least once
    ASSERT_LE(slots.size(), 16u);
    std::set<NProcId> seen;
    for (const auto& slot : slots) {
      EXPECT_GE(slot.active, 1);
      EXPECT_LT(slot.active, 5);
      seen.insert(slot.active);
    }
    EXPECT_EQ(seen.size(), 4u);
  }
}

TEST(SummarizeShapeTest, QuadrantsAreFullyRectangular) {
  const int n = 8;
  NPartition q(n, 4);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      q.set(i, j, static_cast<NProcId>((i >= n / 2) * 2 + (j >= n / 2)));
  const auto stats = summarizeShape(q);
  EXPECT_EQ(stats.procs, 4);
  EXPECT_EQ(stats.slowProcs, 3);
  EXPECT_EQ(stats.rectangularProcs, 3);
  EXPECT_TRUE(stats.allSlowRectangular);
  EXPECT_EQ(stats.overlappingPairs, 0);
}

class NSearchTest
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(NSearchTest, SearchCondensesAndNeverWorsens) {
  const auto [speedStr, seed] = GetParam();
  const auto speeds = NSpeeds::parse(speedStr);
  Rng rng(seed);
  const auto result = runNSearch(24, speeds, rng);
  EXPECT_LE(result.vocEnd, result.vocStart);
  EXPECT_GT(result.pushesApplied, 0);
  result.final.validateCounters();
  const auto counts = speeds.elementCounts(24);
  for (NProcId p = 0; p < result.final.procs(); ++p)
    EXPECT_EQ(result.final.count(p), counts[static_cast<std::size_t>(p)]);
  // The condensed VoC sits far below the scattered start (scattered states
  // have nearly every line shared by every processor). For k = 2 the floor
  // is the Straight-Line's N² against a 2N² start, hence the 0.65 margin.
  EXPECT_LT(static_cast<double>(result.vocEnd),
            0.65 * static_cast<double>(result.vocStart));
}

INSTANTIATE_TEST_SUITE_P(
    SpeedVectors, NSearchTest,
    ::testing::Combine(::testing::Values("4:1", "2:1:1", "8:4:2:1",
                                         "4:2:2:1:1"),
                       ::testing::Values(7u, 123u)));

TEST(NSearchTest, DeterministicForSeed) {
  const auto speeds = NSpeeds::parse("8:4:2:1");
  Rng a(55), b(55);
  const auto ra = runNSearch(16, speeds, a);
  const auto rb = runNSearch(16, speeds, b);
  EXPECT_EQ(ra.final, rb.final);
  EXPECT_EQ(ra.pushesApplied, rb.pushesApplied);
}

}  // namespace
}  // namespace pushpart
