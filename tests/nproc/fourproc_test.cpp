#include <gtest/gtest.h>

#include "nproc/nshapes.hpp"

namespace pushpart {
namespace {

const NSpeeds kSpeeds = NSpeeds::parse("8:4:2:1");

TEST(FourProcShapeTest, ExactCountsForAllShapes) {
  const int n = 60;
  const auto counts = kSpeeds.elementCounts(n);
  for (FourProcShape shape :
       {FourProcShape::kCornerSquares, FourProcShape::kBlockColumns,
        FourProcShape::kColumnStrips}) {
    if (!fourProcFeasible(shape, n, kSpeeds)) continue;
    const auto q = makeFourProcCandidate(shape, n, kSpeeds);
    for (NProcId p = 0; p < 4; ++p)
      EXPECT_EQ(q.count(p), counts[static_cast<std::size_t>(p)])
          << fourProcShapeName(shape) << " proc " << p;
    q.validateCounters();
  }
}

TEST(FourProcShapeTest, StripShapesAlwaysFeasible) {
  for (const char* spec : {"8:4:2:1", "4:1:1:1", "10:9:8:7"}) {
    const auto speeds = NSpeeds::parse(spec);
    EXPECT_TRUE(fourProcFeasible(FourProcShape::kBlockColumns, 40, speeds))
        << spec;
    EXPECT_TRUE(fourProcFeasible(FourProcShape::kColumnStrips, 40, speeds))
        << spec;
  }
}

TEST(FourProcShapeTest, CornerSquaresNeedRoom) {
  // Homogeneous speeds tile exactly into quadrants — feasible.
  EXPECT_TRUE(fourProcFeasible(FourProcShape::kCornerSquares, 40,
                               NSpeeds::parse("1:1:1:1")));
  // When the top-left and bottom-left squares together exceed the matrix
  // height, the corner placement cannot avoid sharing lines.
  EXPECT_FALSE(fourProcFeasible(FourProcShape::kCornerSquares, 40,
                                NSpeeds::parse("1.3:1.3:1:1.3")));
  // Strongly heterogeneous: small squares fit in separate corners.
  EXPECT_TRUE(fourProcFeasible(FourProcShape::kCornerSquares, 60,
                               NSpeeds::parse("20:2:2:1")));
}

TEST(FourProcShapeTest, WrongProcessorCountRejected) {
  EXPECT_FALSE(
      fourProcFeasible(FourProcShape::kBlockColumns, 40, NSpeeds::parse("3:1")));
  EXPECT_THROW(
      makeFourProcCandidate(FourProcShape::kBlockColumns, 40,
                            NSpeeds::parse("3:2:1")),
      std::invalid_argument);
}

TEST(FourProcShapeTest, SlowProcessorsAsymptoticallyRectangular) {
  const int n = 60;
  for (FourProcShape shape :
       {FourProcShape::kBlockColumns, FourProcShape::kColumnStrips}) {
    const auto q = makeFourProcCandidate(shape, n, kSpeeds);
    for (NProcId p = 1; p < 4; ++p)
      EXPECT_TRUE(q.isAsymptoticallyRectangular(p))
          << fourProcShapeName(shape) << " proc " << p;
  }
}

TEST(FourProcShapeTest, CornerSquaresAreNearSquares) {
  const auto speeds = NSpeeds::parse("20:2:2:1");
  const auto q = makeFourProcCandidate(FourProcShape::kCornerSquares, 60, speeds);
  for (NProcId p = 1; p < 4; ++p) {
    const Rect r = q.enclosingRect(p);
    EXPECT_LE(std::abs(r.width() - r.height()), 1) << "proc " << p;
  }
}

TEST(FourProcShapeTest, CandidatesAreCondensed) {
  // The canonical shapes admit no strictly improving k-ary push.
  const PushOptions strictOnly{.allowEqualVoC = false};
  for (FourProcShape shape :
       {FourProcShape::kBlockColumns, FourProcShape::kColumnStrips}) {
    auto q = makeFourProcCandidate(shape, 40, kSpeeds);
    for (NProcId p = 1; p < 4; ++p)
      for (Direction d : kAllDirections)
        EXPECT_FALSE(tryPushN(q, p, d, strictOnly).applied)
            << fourProcShapeName(shape) << " proc " << p << " "
            << directionName(d);
  }
}

TEST(FourProcShapeTest, SearchNeverBeatsCandidates) {
  // The weak form of Postulate 1, carried to k = 4: across a batch of
  // randomized condensations, nothing undercuts the best canonical shape.
  const int n = 32;
  std::int64_t bestCandidate = std::numeric_limits<std::int64_t>::max();
  for (FourProcShape shape :
       {FourProcShape::kCornerSquares, FourProcShape::kBlockColumns,
        FourProcShape::kColumnStrips}) {
    if (!fourProcFeasible(shape, n, kSpeeds)) continue;
    bestCandidate = std::min(
        bestCandidate,
        makeFourProcCandidate(shape, n, kSpeeds).volumeOfCommunication());
  }
  ASSERT_LT(bestCandidate, std::numeric_limits<std::int64_t>::max());

  Rng rng(404);
  for (int run = 0; run < 10; ++run) {
    const auto result = runNSearch(n, kSpeeds, rng);
    EXPECT_LE(bestCandidate, result.vocEnd) << "run " << run;
  }
}

}  // namespace
}  // namespace pushpart
