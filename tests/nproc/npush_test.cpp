#include "nproc/npush.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "nproc/nsearch.hpp"
#include "support/check.hpp"

namespace pushpart {
namespace {

NPartition fourProcGrid(int n) {
  NPartition q(n, 4);
  return q;
}

TEST(NPushTest, FastestProcessorRejected) {
  auto q = fourProcGrid(6);
  EXPECT_THROW(tryPushN(q, 0, Direction::Down), CheckError);
  EXPECT_THROW(tryPushN(q, 4, Direction::Down), CheckError);
}

TEST(NPushTest, SimpleDownPushOnKAryGrid) {
  // Processor 2 owns a ragged column; the stray top element drops inward.
  NPartition q(5, 4);
  q.set(0, 0, 2);
  q.set(0, 1, 2);
  q.set(1, 0, 2);
  q.set(2, 0, 2);
  const auto before = q.volumeOfCommunication();
  const auto out = tryPushN(q, 2, Direction::Down);
  ASSERT_TRUE(out.applied);
  EXPECT_LT(q.volumeOfCommunication(), before);
  EXPECT_EQ(q.rowCount(2, 0), 0);
  EXPECT_EQ(q.count(2), 4);
  q.validateCounters();
}

TEST(NPushTest, FailedPushLeavesGridUntouched) {
  NPartition q(5, 4);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) q.set(i, j, 1);  // solid square: no pushes
  const auto original = q;
  for (Direction d : kAllDirections) {
    EXPECT_FALSE(tryPushN(q, 1, d).applied) << directionName(d);
    EXPECT_EQ(q, original);
  }
}

TEST(NPushTest, ThreeProcViaGeneralEngineMatchesInvariants) {
  // k = 3 through the generalized engine obeys the same guarantees the
  // specialized engine enforces.
  Rng rng(9);
  const auto speeds = NSpeeds::parse("3:2:1");
  auto q = randomNPartition(24, speeds, rng);
  const auto counts = speeds.elementCounts(24);
  for (int step = 0; step < 200; ++step) {
    const NProcId active = 1 + static_cast<NProcId>(rng.below(2));
    const Direction dir = kAllDirections[rng.below(4)];
    const auto voc = q.volumeOfCommunication();
    (void)tryPushN(q, active, dir);
    ASSERT_LE(q.volumeOfCommunication(), voc);
    for (NProcId p = 0; p < 3; ++p)
      ASSERT_EQ(q.count(p), counts[static_cast<std::size_t>(p)]);
  }
  q.validateCounters();
}

using NPushParam = std::tuple<const char*, std::uint64_t>;

class NPushPropertyTest : public ::testing::TestWithParam<NPushParam> {};

TEST_P(NPushPropertyTest, PushInvariantsHoldForKProcs) {
  const auto [speedStr, seed] = GetParam();
  const auto speeds = NSpeeds::parse(speedStr);
  Rng rng(seed);
  auto q = randomNPartition(20, speeds, rng);
  const int k = q.procs();
  for (int step = 0; step < 150; ++step) {
    const NProcId active =
        1 + static_cast<NProcId>(rng.below(static_cast<std::uint64_t>(k - 1)));
    const Direction dir = kAllDirections[rng.below(4)];
    const auto voc = q.volumeOfCommunication();
    std::vector<Rect> rects;
    for (NProcId p = 1; p < k; ++p) rects.push_back(q.enclosingRect(p));
    const auto out = tryPushN(q, active, dir);
    ASSERT_LE(q.volumeOfCommunication(), voc);
    if (out.applied) {
      for (NProcId p = 1; p < k; ++p)
        ASSERT_TRUE(rects[static_cast<std::size_t>(p - 1)].contains(
            q.enclosingRect(p)))
            << "proc " << p << " rect grew";
    }
  }
  q.validateCounters();
}

INSTANTIATE_TEST_SUITE_P(
    SpeedVectors, NPushPropertyTest,
    ::testing::Combine(::testing::Values("4:1", "3:2:1", "8:4:2:1",
                                         "5:3:2:1:1"),
                       ::testing::Values(3u, 17u)));

TEST(CondenseNTest, ReachesFixedPoint) {
  Rng rng(21);
  const auto speeds = NSpeeds::parse("8:4:2:1");
  auto q = randomNPartition(20, speeds, rng);
  const auto before = q.volumeOfCommunication();
  const auto pushes = condenseN(q);
  EXPECT_GT(pushes, 0);
  EXPECT_LT(q.volumeOfCommunication(), before);
  // Fixed point: another pass applies nothing.
  EXPECT_EQ(condenseN(q), 0);
  q.validateCounters();
}

}  // namespace
}  // namespace pushpart
