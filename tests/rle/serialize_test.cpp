// RLE serializer tests: the run-length saver must be byte-interchangeable
// with the grid's v1 format, and the loader must inherit the grid parser's
// strictness.
#include "rle/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "grid/builder.hpp"
#include "grid/serialize.hpp"
#include "support/rng.hpp"
#include "verify/invariants.hpp"

namespace pushpart {
namespace {

TEST(RleSerializeTest, RoundTripsByteIdentically) {
  Rng rng(5);
  const RlePartition q(randomPartition(14, Ratio{3, 2, 1}, rng));
  std::ostringstream first;
  saveRlePartition(q, first);
  std::istringstream in(first.str());
  const RlePartition back = loadRlePartition(in);
  EXPECT_TRUE(back == q);
  std::ostringstream second;
  saveRlePartition(back, second);
  EXPECT_EQ(second.str(), first.str());
}

TEST(RleSerializeTest, BytesMatchGridSerializer) {
  Rng rng(9);
  const Partition grid = randomPartition(11, Ratio{2, 1, 1}, rng);
  std::ostringstream viaGrid;
  savePartition(grid, viaGrid);
  std::ostringstream viaRle;
  saveRlePartition(RlePartition(grid), viaRle);
  EXPECT_EQ(viaRle.str(), viaGrid.str());
}

TEST(RleSerializeTest, LoadsGridSavedBytes) {
  Rng rng(13);
  const Partition grid = randomPartition(8, Ratio{5, 2, 1}, rng);
  std::ostringstream out;
  savePartition(grid, out);
  std::istringstream in(out.str());
  const RlePartition q = loadRlePartition(in);
  EXPECT_TRUE(q.sameOwners(grid));
}

TEST(RleSerializeTest, LoaderInheritsGridStrictness) {
  std::istringstream badMagic("not-a-partition v1\nn 2\nPP\nPP\n");
  EXPECT_THROW(loadRlePartition(badMagic), std::exception);
  std::istringstream badRow("pushpart-partition v1\nn 2\nPX\nPP\n");
  EXPECT_THROW(loadRlePartition(badRow), std::exception);
  std::istringstream shortRow("pushpart-partition v1\nn 2\nP\nPP\n");
  EXPECT_THROW(loadRlePartition(shortRow), std::exception);
}

TEST(RleSerializeTest, CheckerAcceptsRandomStates) {
  Rng rng(17);
  for (int i = 0; i < 8; ++i) {
    const RlePartition q(
        randomPartition(4 + static_cast<int>(rng.below(12)),
                        Ratio{3, 2, 1}, rng));
    EXPECT_TRUE(checkRleSerializeRoundTrip(q).ok());
  }
}

}  // namespace
}  // namespace pushpart
