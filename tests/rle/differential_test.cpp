// The RLE differential property suite (ISSUE 8): seeded lockstep Push and
// DFA trajectories on both engines — 1000+ trajectories per run — plus the
// corpus replay and the threaded batch parity test that rides the TSan job.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "dfa/batch.hpp"
#include "rle/engine.hpp"
#include "verify/generators.hpp"
#include "verify/invariants.hpp"

namespace pushpart {
namespace {

// (trajectories per style bucket) x (styles) x (push + dfa) >= 1000: the
// differential volume the acceptance criteria call for, kept cheap by small
// grids. Each push-lockstep case compares the full state after every single
// attempt; each dfa-lockstep case compares complete walks.
constexpr int kTrajectoriesPerStyle = 130;

TEST(RleDifferentialTest, PushLockstepTrajectories) {
  int trajectories = 0;
  for (int styleIdx = 0; styleIdx < kNumGenStyles; ++styleIdx) {
    for (int t = 0; t < kTrajectoriesPerStyle; ++t) {
      const std::uint64_t seed =
          static_cast<std::uint64_t>(styleIdx) * 10000 +
          static_cast<std::uint64_t>(t);
      Rng rng(seed);
      const Ratio ratio = genRatio(rng);
      const int n = genSmallN(rng, 4, 14);
      const Partition q0 =
          genPartition(static_cast<GenStyle>(styleIdx), n, ratio, rng);
      const Schedule schedule = genSchedule(rng);
      const CheckReport report = checkRlePushLockstep(q0, schedule);
      ASSERT_TRUE(report.ok())
          << "style " << genStyleName(static_cast<GenStyle>(styleIdx))
          << " seed " << seed << " n " << n << ":\n" << report.str();
      ++trajectories;
    }
  }
  EXPECT_EQ(trajectories, kNumGenStyles * kTrajectoriesPerStyle);
}

TEST(RleDifferentialTest, DfaLockstepTrajectories) {
  int trajectories = 0;
  for (int styleIdx = 0; styleIdx < kNumGenStyles; ++styleIdx) {
    for (int t = 0; t < kTrajectoriesPerStyle; ++t) {
      const std::uint64_t seed =
          500000 + static_cast<std::uint64_t>(styleIdx) * 10000 +
          static_cast<std::uint64_t>(t);
      Rng rng(seed);
      const Ratio ratio = genRatio(rng);
      const int n = genSmallN(rng, 4, 14);
      const Partition q0 =
          genPartition(static_cast<GenStyle>(styleIdx), n, ratio, rng);
      const Schedule schedule = genSchedule(rng);
      const CheckReport report = checkRleDfaLockstep(q0, schedule);
      ASSERT_TRUE(report.ok())
          << "style " << genStyleName(static_cast<GenStyle>(styleIdx))
          << " seed " << seed << " n " << n << ":\n" << report.str();
      ++trajectories;
    }
  }
  EXPECT_EQ(trajectories, kNumGenStyles * kTrajectoriesPerStyle);
}

TEST(RleDifferentialTest, TraceSnapshotsRenderIdentically) {
  // Trace mode exercises the dfaTraceArt ADL hook on both engines.
  Rng rng(77);
  const Partition q0 = genPartition(GenStyle::kScattered, 10, Ratio{3, 2, 1},
                                    rng);
  const Schedule schedule = genSchedule(rng);
  DfaOptions options;
  options.traceEvery = 5;
  options.traceCells = 10;
  const DfaResult g = runDfa(q0, schedule, options);
  const DfaResultT<RlePartition> r =
      runDfaT(RlePartition(q0), schedule, options);
  ASSERT_EQ(g.trace.size(), r.trace.size());
  for (std::size_t s = 0; s < g.trace.size(); ++s)
    EXPECT_EQ(g.trace[s].art, r.trace[s].art) << "snapshot " << s;
}

TEST(RleDifferentialTest, CorpusReplaysWithIdenticalVerdicts) {
  // Every checked-in counterexample must produce the same verdicts through
  // the RLE engine — replayCorpusFile runs the cross-engine parity checks
  // (state agreement, serializer bytes, pushAvailable per direction).
  const std::vector<std::string> files = corpusFiles(PUSHPART_CORPUS_DIR);
  ASSERT_FALSE(files.empty()) << "corpus missing at " << PUSHPART_CORPUS_DIR;
  for (const std::string& path : files) {
    const CheckReport report = replayCorpusFile(path);
    EXPECT_TRUE(report.ok()) << path << ":\n" << report.str();
  }
}

// Batch parity under real threads: the kRle and kGrid engines must produce
// bit-identical per-run results regardless of thread interleaving, and the
// threaded RLE batch must match the serial one. This test rides the TSan
// suite (see .github/workflows/ci.yml) to also prove the template engine's
// thread-safety on the run-length state.
TEST(RleDifferentialTest, ThreadedBatchesAreBitIdenticalAcrossEngines) {
  struct RunDigest {
    std::int64_t vocEnd = 0;
    std::int64_t pushes = 0;
    std::uint64_t hash = 0;

    bool operator==(const RunDigest&) const = default;
  };
  const auto collect = [](BatchEngine engine, int threads) {
    BatchOptions options;
    options.n = 24;
    options.runs = 24;
    options.threads = threads;
    options.seed = 99;
    options.engine = engine;
    std::map<int, RunDigest> digests;
    const BatchSummary summary = runBatch(options, [&](const BatchRun& run) {
      digests[run.runIndex] = {run.result.vocEnd, run.result.pushesApplied,
                               run.result.final.hash()};
    });
    EXPECT_TRUE(summary.allCompleted());
    EXPECT_EQ(digests.size(), 24u);
    return digests;
  };

  const auto rleThreaded = collect(BatchEngine::kRle, 4);
  const auto rleSerial = collect(BatchEngine::kRle, 1);
  const auto gridThreaded = collect(BatchEngine::kGrid, 4);
  EXPECT_EQ(rleThreaded, rleSerial);
  EXPECT_EQ(rleThreaded, gridThreaded);
}

}  // namespace
}  // namespace pushpart
