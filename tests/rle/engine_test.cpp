// Push/beautify engine parity on the run-length state: the shared templates
// in push/engine.hpp instantiated on RlePartition must reproduce the grid's
// behaviour operation by operation, including the oriented run lookups the
// fast legality path is built on.
#include "rle/engine.hpp"

#include <gtest/gtest.h>

#include <array>

#include "grid/builder.hpp"
#include "push/beautify.hpp"
#include "push/oriented.hpp"
#include "shapes/candidates.hpp"
#include "support/rng.hpp"
#include "verify/invariants.hpp"

namespace pushpart {
namespace {

const Ratio kRatio{3, 2, 1};

TEST(RleEngineTest, OrientedRunLookupMatchesCells) {
  // The concept-gated rowRun must agree with the element view in every
  // direction: same owner under the cursor, end strictly ahead of it.
  Rng rng(21);
  const RlePartition q(randomPartition(9, kRatio, rng));
  for (Direction dir : kAllDirections) {
    OrientedView<const RlePartition> view(q, dir);
    for (int r = 0; r < 9; ++r)
      for (int c = 0; c < 9; ++c) {
        const OwnerRun run = view.rowRun(r, c);
        EXPECT_EQ(run.owner, view.at(r, c))
            << directionName(dir) << " (" << r << "," << c << ")";
        EXPECT_GT(run.end, c);
        EXPECT_LE(run.end, 9);
        // Every cell the run claims really has that owner.
        for (int cc = c; cc < run.end; ++cc)
          ASSERT_EQ(view.at(r, cc), run.owner);
      }
  }
}

TEST(RleEngineTest, TryPushMatchesGridOutcomeByOutcome) {
  Rng rng(31);
  Partition grid = randomPartition(12, kRatio, rng);
  RlePartition rle(grid);
  for (int step = 0; step < 200; ++step) {
    const Proc active = rng.chance(0.5) ? Proc::R : Proc::S;
    const Direction dir = kAllDirections[rng.below(4)];
    const PushOutcome g = tryPush(grid, active, dir);
    const PushOutcome r = tryPush(rle, active, dir);
    ASSERT_EQ(g.applied, r.applied) << "step " << step;
    ASSERT_EQ(g.vocAfter, r.vocAfter) << "step " << step;
    if (g.applied) {
      ASSERT_EQ(g.type, r.type) << "step " << step;
      ASSERT_EQ(g.elementsMoved, r.elementsMoved) << "step " << step;
    }
    ASSERT_TRUE(checkRleGridAgreement(grid, rle).ok()) << "step " << step;
  }
}

TEST(RleEngineTest, PushAvailableAgreesEverywhere) {
  Rng rng(37);
  for (int round = 0; round < 10; ++round) {
    const Partition grid = randomPartition(10, kRatio, rng);
    const RlePartition rle(grid);
    for (Proc x : kSlowProcs)
      for (Direction d : kAllDirections) {
        const std::array<Direction, 1> one{d};
        EXPECT_EQ(pushAvailable(grid, x, one), pushAvailable(rle, x, one))
            << procName(x) << " " << directionName(d);
      }
  }
}

TEST(RleEngineTest, BeautifyMatchesGrid) {
  Rng rng(43);
  Partition grid = randomPartition(16, kRatio, rng);
  RlePartition rle(grid);
  const BeautifyResult g = beautify(grid);
  const BeautifyResult r = beautify(rle);
  EXPECT_EQ(g.pushesApplied, r.pushesApplied);
  EXPECT_EQ(g.vocBefore, r.vocBefore);
  EXPECT_EQ(g.vocAfter, r.vocAfter);
  EXPECT_TRUE(checkRleGridAgreement(grid, rle).ok());
}

TEST(RleEngineTest, CompactRegionMatchesGrid) {
  Rng rng(47);
  Partition grid = randomPartition(14, kRatio, rng);
  RlePartition rle(grid);
  for (Proc x : kSlowProcs) {
    EXPECT_EQ(compactRegion(grid, x), compactRegion(rle, x));
    ASSERT_TRUE(checkRleGridAgreement(grid, rle).ok());
  }
}

TEST(RleEngineTest, FullyCondensedAgreesOnCandidatesAndRandoms) {
  const Partition candidate =
      makeCandidate(CandidateShape::kSquareCorner, 24, kRatio);
  EXPECT_EQ(fullyCondensed(candidate), fullyCondensed(RlePartition(candidate)));
  EXPECT_TRUE(fullyCondensed(RlePartition(candidate)));
  Rng rng(53);
  for (int round = 0; round < 8; ++round) {
    const Partition grid = randomPartition(12, kRatio, rng);
    EXPECT_EQ(fullyCondensed(grid), fullyCondensed(RlePartition(grid)));
  }
}

TEST(RleEngineTest, DfaTraceRendersFromRuns) {
  Rng rng(59);
  const Partition grid = randomPartition(8, kRatio, rng);
  EXPECT_EQ(dfaTraceArt(RlePartition(grid), 8), dfaTraceArt(grid, 8));
}

}  // namespace
}  // namespace pushpart
