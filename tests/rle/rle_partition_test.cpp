// RlePartition unit tests: run normalisation under splits and merges, the
// edge cases the representation is most likely to get wrong (length-1 runs,
// line boundaries, alternating owners), and counter parity with the
// element-exact grid on random mutation streams.
#include "rle/rle_partition.hpp"

#include <gtest/gtest.h>

#include "grid/builder.hpp"
#include "support/rng.hpp"
#include "verify/invariants.hpp"

namespace pushpart {
namespace {

TEST(RlePartitionTest, FillConstructionIsOneRunPerLine) {
  const RlePartition q(5, Proc::R);
  EXPECT_EQ(q.n(), 5);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(q.rowRunCount(i), 1);
    ASSERT_EQ(q.colRunCount(i), 1);
    EXPECT_EQ(q.rowRuns(i)[0].end, 5);
    EXPECT_EQ(q.rowRuns(i)[0].owner, Proc::R);
  }
  EXPECT_EQ(q.count(Proc::R), 25);
  EXPECT_EQ(q.count(Proc::P), 0);
  EXPECT_EQ(q.totalRuns(), 5);  // row representation only
  EXPECT_EQ(q.volumeOfCommunication(), 0);
  q.validateCounters();
}

TEST(RlePartitionTest, SingleOwnerRowsStaySingleRuns) {
  // Whole-row ownership: each row one run, each column n runs of
  // alternating owners — the transposed views must disagree on run counts
  // while agreeing on every counter.
  const int n = 6;
  Partition grid(n, Proc::P);
  for (int j = 0; j < n; ++j) {
    grid.set(0, j, Proc::R);
    grid.set(1, j, Proc::S);
  }
  const RlePartition q(grid);
  EXPECT_EQ(q.rowRunCount(0), 1);
  EXPECT_EQ(q.rowRunCount(1), 1);
  EXPECT_EQ(q.rowRunCount(2), 1);
  for (int j = 0; j < n; ++j) EXPECT_EQ(q.colRunCount(j), 3);
  EXPECT_TRUE(checkRleGridAgreement(grid, q).ok());
}

TEST(RlePartitionTest, AlternatingOwnersWorstCase) {
  // RSRSRS... in every row: n runs per row, the representation's worst
  // case. Everything must still agree with the grid.
  const int n = 8;
  Partition grid(n, Proc::P);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) grid.set(i, j, j % 2 == 0 ? Proc::R : Proc::S);
  const RlePartition q(grid);
  for (int i = 0; i < n; ++i) EXPECT_EQ(q.rowRunCount(i), n);
  for (int j = 0; j < n; ++j) EXPECT_EQ(q.colRunCount(j), 1);
  EXPECT_EQ(q.totalRuns(), static_cast<std::int64_t>(n) * n);
  EXPECT_TRUE(checkRleGridAgreement(grid, q).ok());
  q.validateCounters();
}

TEST(RlePartitionTest, SplitAndMergeAtLineBoundaries) {
  const int n = 5;
  RlePartition q(n, Proc::P);
  Partition grid(n, Proc::P);

  // Split at the line begin: [R][PPPP].
  q.set(2, 0, Proc::R);
  grid.set(2, 0, Proc::R);
  EXPECT_EQ(q.rowRunCount(2), 2);
  EXPECT_TRUE(checkRleGridAgreement(grid, q).ok());

  // Split at the line end: [R][PPP][S].
  q.set(2, n - 1, Proc::S);
  grid.set(2, n - 1, Proc::S);
  EXPECT_EQ(q.rowRunCount(2), 3);
  EXPECT_TRUE(checkRleGridAgreement(grid, q).ok());

  // Interior split: [R][P][R][P][S].
  q.set(2, 2, Proc::R);
  grid.set(2, 2, Proc::R);
  EXPECT_EQ(q.rowRunCount(2), 5);
  EXPECT_TRUE(checkRleGridAgreement(grid, q).ok());

  // Left-neighbor merge on a length-1 gap: [RRR][P][S].
  q.set(2, 1, Proc::R);
  grid.set(2, 1, Proc::R);
  EXPECT_EQ(q.rowRunCount(2), 3);
  EXPECT_TRUE(checkRleGridAgreement(grid, q).ok());

  // Both-neighbor merge erasing a length-1 run: [RRRR][S].
  q.set(2, 3, Proc::R);
  grid.set(2, 3, Proc::R);
  EXPECT_EQ(q.rowRunCount(2), 2);
  EXPECT_TRUE(checkRleGridAgreement(grid, q).ok());

  // Merge back to a single full-line run.
  q.set(2, 4, Proc::R);
  grid.set(2, 4, Proc::R);
  EXPECT_EQ(q.rowRunCount(2), 1);
  EXPECT_EQ(q.rowRuns(2)[0].end, n);
  EXPECT_TRUE(checkRleGridAgreement(grid, q).ok());
  q.validateCounters();
}

TEST(RlePartitionTest, SameOwnerSetIsANoOp) {
  RlePartition q(4, Proc::P);
  const std::uint64_t before = q.hash();
  q.set(1, 1, Proc::P);
  EXPECT_EQ(q.hash(), before);
  EXPECT_EQ(q.rowRunCount(1), 1);
}

TEST(RlePartitionTest, ConversionRoundTripPreservesEverything) {
  Rng rng(7);
  const Partition grid = randomPartition(12, Ratio{3, 2, 1}, rng);
  const RlePartition q(grid);
  EXPECT_TRUE(q.sameOwners(grid));
  const Partition back = q.toPartition();
  EXPECT_TRUE(back == grid);
  const RlePartition again(back);
  EXPECT_TRUE(again == q);
}

TEST(RlePartitionTest, SwapCellsMatchesGrid) {
  Rng rng(11);
  Partition grid = randomPartition(9, Ratio{2, 1, 1}, rng);
  RlePartition q(grid);
  grid.swapCells(0, 0, 8, 8);
  q.swapCells(0, 0, 8, 8);
  grid.swapCells(3, 4, 3, 5);
  q.swapCells(3, 4, 3, 5);
  EXPECT_TRUE(checkRleGridAgreement(grid, q).ok());
}

TEST(RlePartitionTest, HashDistinguishesAndEqualityHolds) {
  RlePartition a(6, Proc::P);
  RlePartition b(6, Proc::P);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(3, 3, Proc::R);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.hash(), b.hash());
  b.set(3, 3, Proc::P);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(RlePartitionTest, RandomMutationStreamStaysInLockstep) {
  const int n = 16;
  Rng rng(42);
  Partition grid = randomPartition(n, Ratio{5, 2, 1}, rng);
  RlePartition q(grid);
  for (int step = 0; step < 2000; ++step) {
    const int i = static_cast<int>(rng.below(n));
    const int j = static_cast<int>(rng.below(n));
    const Proc p = static_cast<Proc>(rng.below(3));
    grid.set(i, j, p);
    q.set(i, j, p);
  }
  EXPECT_TRUE(checkRleGridAgreement(grid, q).ok());
  q.validateCounters();
}

TEST(RlePartitionTest, RunLookupsAgreeWithCells) {
  Rng rng(3);
  const Partition grid = randomPartition(10, Ratio{3, 1, 1}, rng);
  const RlePartition q(grid);
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 10; ++j) {
      const RlePartition::Run row = q.rowRunAt(i, j);
      const RlePartition::Run col = q.colRunAt(j, i);
      EXPECT_EQ(row.owner, grid.at(i, j));
      EXPECT_EQ(col.owner, grid.at(i, j));
      EXPECT_GT(row.end, j);
      EXPECT_GT(col.end, i);
    }
}

}  // namespace
}  // namespace pushpart
