#include "family/family.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "family/hierarchical.hpp"
#include "family/layered.hpp"
#include "family/rank.hpp"
#include "model/machine.hpp"
#include "shapes/candidates.hpp"
#include "verify/oracle.hpp"

namespace pushpart {
namespace {

const std::vector<Ratio> kRatios = {
    Ratio{2, 1, 1}, Ratio{5, 2, 1}, Ratio{10, 3, 1}, Ratio{3, 2, 2}};

TEST(FamilySet, ParseAndFormat) {
  EXPECT_EQ(FamilySet::all().str(), "all");
  EXPECT_EQ(FamilySet::canonicalOnly().str(), "canonical");
  EXPECT_FALSE(FamilySet::canonicalOnly().extended());
  EXPECT_TRUE(FamilySet::all().extended());
  EXPECT_EQ(FamilySet::parse("all"), FamilySet::all());
  EXPECT_EQ(FamilySet::parse("canonical,layered").str(), "canonical,layered");
  EXPECT_THROW(FamilySet::parse("bogus"), std::invalid_argument);
  EXPECT_THROW(FamilySet::parse(""), std::invalid_argument);
}

TEST(FamilyNames, RoundTrip) {
  for (const FamilyId id : kAllFamilies) {
    EXPECT_EQ(familyFromName(familyName(id)), id);
  }
  EXPECT_THROW(familyFromName("nope"), std::invalid_argument);
}

TEST(FamilyRegistry, BuiltinsRegisteredInOrder) {
  const auto& reg = builtinFamilies();
  ASSERT_EQ(reg.families().size(), kNumFamilies);
  EXPECT_EQ(reg.families()[0]->id(), FamilyId::kCanonical);
  EXPECT_EQ(reg.families()[1]->id(), FamilyId::kLayered);
  EXPECT_EQ(reg.families()[2]->id(), FamilyId::kHierarchical);
  EXPECT_NE(reg.find(FamilyId::kLayered), nullptr);
}

// Every emitted candidate must carry the ratio's exact element counts and a
// consistent partition — the same contract the canonical constructors obey.
TEST(FamilyEnumerate, ExactCountsAndValidCounters) {
  for (const Ratio& ratio : kRatios) {
    for (const int n : {12, 25}) {
      const auto counts = ratio.elementCounts(n);
      int emitted = 0;
      builtinFamilies().forEach(
          n, ratio, FamilySet::all(), [&](const FamilyCandidate& c) {
            ++emitted;
            EXPECT_FALSE(c.name.empty());
            EXPECT_EQ(c.name.find(' '), std::string::npos) << c.name;
            EXPECT_EQ(c.partition.n(), n) << c.name;
            EXPECT_NO_THROW(c.partition.validateCounters()) << c.name;
            // elementCounts order is the q-encoding {eR, eS, eP}.
            EXPECT_EQ(c.partition.count(Proc::R), counts[0])
                << c.name << " ratio=" << ratio.str() << " n=" << n;
            EXPECT_EQ(c.partition.count(Proc::S), counts[1]) << c.name;
            EXPECT_EQ(c.partition.count(Proc::P), counts[2]) << c.name;
          });
      // All six canonical shapes are feasible at these sizes, and the
      // extended families must contribute beyond them.
      EXPECT_GT(emitted, kNumCandidates)
          << "ratio=" << ratio.str() << " n=" << n;
    }
  }
}

TEST(FamilyEnumerate, DeduplicatesByPartition) {
  for (const Ratio& ratio : kRatios) {
    std::vector<std::uint64_t> hashes;
    builtinFamilies().forEach(20, ratio, FamilySet::all(),
                              [&](const FamilyCandidate& c) {
                                hashes.push_back(c.partition.hash());
                              });
    const std::set<std::uint64_t> unique(hashes.begin(), hashes.end());
    EXPECT_EQ(unique.size(), hashes.size()) << "ratio=" << ratio.str();
  }
}

TEST(FamilyEnumerate, Deterministic) {
  const Ratio ratio{5, 2, 1};
  std::vector<std::string> a, b;
  builtinFamilies().forEach(18, ratio, FamilySet::all(),
                            [&](const FamilyCandidate& c) { a.push_back(c.name); });
  builtinFamilies().forEach(18, ratio, FamilySet::all(),
                            [&](const FamilyCandidate& c) { b.push_back(c.name); });
  EXPECT_EQ(a, b);
}

TEST(FamilyEnumerate, CanonicalMembersMatchMakeCandidate) {
  const Ratio ratio{5, 2, 1};
  const int n = 30;
  int canonical = 0;
  builtinFamilies().forEach(
      n, ratio, FamilySet::canonicalOnly(), [&](const FamilyCandidate& c) {
        ++canonical;
        ASSERT_TRUE(c.shape.has_value());
        EXPECT_EQ(c.name, candidateName(*c.shape));
        const Partition expect = makeCandidate(*c.shape, n, ratio);
        EXPECT_EQ(c.partition.hash(), expect.hash()) << c.name;
      });
  EXPECT_EQ(canonical, kNumCandidates);
}

TEST(LayeredFamily, SpecInventoryAndNames) {
  EXPECT_EQ(allLayeredSpecs().size(), 36u);
  const LayeredSpec spec{{{Proc::P}, {Proc::R, Proc::S}}, true};
  EXPECT_EQ(layeredSpecName(spec), "layers:P/R-S:r");
}

TEST(LayeredFamily, ThreeBandStackMatchesStripLayout) {
  // One band per processor with row bands: each processor owns whole
  // row-aligned stripes, so every row has a single owner.
  const Ratio ratio{2, 1, 1};
  const int n = 16;
  const LayeredSpec spec{{{Proc::P}, {Proc::R}, {Proc::S}}, true};
  const auto q = makeLayeredPartition(n, ratio, spec);
  ASSERT_TRUE(q.has_value());
  for (int r = 0; r < n; ++r) {
    const Proc owner = q->at(r, 0);
    for (int c = 1; c < n; ++c) EXPECT_EQ(q->at(r, c), owner) << "row " << r;
  }
}

TEST(HierarchicalFamily, SpecInventoryAndNames) {
  EXPECT_EQ(allHierSpecs().size(), 60u);
}

TEST(HierarchicalFamily, CornerSquareConfinesTheGroup) {
  // Group {R,S} in a corner square: all R and S cells must lie inside the
  // bottom-right box whose side covers their combined count.
  const Ratio ratio{6, 1, 1};
  const int n = 24;
  HierSpec spec;
  spec.group = {Proc::R, Proc::S};
  spec.placement = GroupPlacement::kCornerSquare;
  const auto q = makeHierPartition(n, ratio, spec);
  ASSERT_TRUE(q.has_value());
  const auto counts = ratio.elementCounts(n);
  const std::int64_t group = counts[procSlot(Proc::R)] + counts[procSlot(Proc::S)];
  int side = 0;
  while (static_cast<std::int64_t>(side) * side < group) ++side;
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      if (q->at(r, c) != Proc::P) {
        EXPECT_GE(r, n - side) << "(" << r << "," << c << ")";
        EXPECT_GE(c, n - side) << "(" << r << "," << c << ")";
      }
}

TEST(FamilyRank, SortedFeasibleAndNonNegativeGaps) {
  Machine machine;
  machine.ratio = Ratio{5, 2, 1};
  const auto ranked =
      rankFamilyCandidates(Algo::kSCB, 40, machine, FamilySet::all());
  ASSERT_FALSE(ranked.empty());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i].gapPct, 0.0) << ranked[i].name;
    EXPECT_GT(ranked[i].voc, 0) << ranked[i].name;
    if (i) {
      EXPECT_LE(ranked[i - 1].model.execSeconds, ranked[i].model.execSeconds);
    }
  }
}

TEST(FamilyRank, BestIsNoWorseThanEveryCanonical) {
  Machine machine;
  for (const Ratio& ratio : kRatios) {
    machine.ratio = ratio;
    for (const Algo algo : kAllAlgos) {
      const auto best =
          bestFamilyCandidate(algo, 30, machine, FamilySet::all());
      ASSERT_TRUE(best.has_value()) << algoName(algo);
      const auto canon =
          bestFamilyCandidate(algo, 30, machine, FamilySet::canonicalOnly());
      ASSERT_TRUE(canon.has_value());
      EXPECT_LE(best->model.execSeconds, canon->model.execSeconds)
          << algoName(algo) << " ratio=" << ratio.str();
    }
  }
}

// The exhaustive small-N oracle minimum is a floor under every family
// member's VoC — the family explores a subset of all arrangements.
TEST(FamilyVsExhaustiveOracle, SmallNFloor) {
  for (const Ratio& ratio : {Ratio{2, 1, 1}, Ratio{3, 1, 1}, Ratio{5, 2, 1}}) {
    for (const int n : {4, 5}) {
      const SmallNOracleResult exact = smallNOptimalVoc(n, ratio);
      if (exact.tier != SmallNOracleTier::kExhaustive) continue;
      builtinFamilies().forEach(
          n, ratio, FamilySet::all(), [&](const FamilyCandidate& c) {
            EXPECT_GE(c.partition.volumeOfCommunication(), exact.minVoc)
                << c.name << " n=" << n << " ratio=" << ratio.str();
          });
    }
  }
}

TEST(FamilyEnumerateN, ExactCountsForFourProcs) {
  NSpeeds speeds;
  speeds.speeds = {8.0, 4.0, 2.0, 1.0};
  const int n = 16;
  const auto counts = speeds.elementCounts(n);
  int emitted = 0;
  std::set<FamilyId> seen;
  builtinFamilies().forEachN(
      n, speeds, FamilySet::all(), [&](const NFamilyCandidate& c) {
        ++emitted;
        seen.insert(c.family);
        EXPECT_NO_THROW(c.partition.validateCounters()) << c.name;
        for (std::size_t p = 0; p < counts.size(); ++p) {
          EXPECT_EQ(c.partition.count(static_cast<NProcId>(p)), counts[p])
              << c.name << " proc " << p;
        }
      });
  EXPECT_GT(emitted, 0);
  EXPECT_TRUE(seen.count(FamilyId::kLayered));
  EXPECT_TRUE(seen.count(FamilyId::kHierarchical));
}

TEST(FamilyEnumerateN, TwoProcsServedByCanonicalOnly) {
  NSpeeds speeds;
  speeds.speeds = {3.0, 1.0};
  int emitted = 0;
  builtinFamilies().forEachN(12, speeds, FamilySet::all(),
                             [&](const NFamilyCandidate& c) {
                               EXPECT_EQ(c.family, FamilyId::kCanonical);
                               ++emitted;
                             });
  EXPECT_GT(emitted, 0);
}

}  // namespace
}  // namespace pushpart
