#include "atlas/builder.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace pushpart {
namespace {

AtlasBuildOptions smallBuild() {
  AtlasBuildOptions options;
  options.spec.prMin = 1.0;
  options.spec.prMax = 8.0;
  options.spec.prSteps = 8;
  options.spec.rrMin = 1.0;
  options.spec.rrMax = 4.0;
  options.spec.rrSteps = 4;
  options.info.n = 48;
  options.threads = 1;
  return options;
}

TEST(AtlasBuilderTest, SolvesEveryValidCell) {
  AtlasBuildReport report;
  const auto atlas = buildAtlas(smallBuild(), &report);
  // Valid cells: sum over i of min(i+1, rrSteps).
  EXPECT_EQ(report.attempted, 26u);
  EXPECT_EQ(report.solved, 26u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(atlas->solvedCells(), 26u);
  // Every solved cell carries a positive surface value and a modeled time.
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 4; ++j) {
      if (!atlas->spec().validCell(i, j)) continue;
      const AtlasCell cell = *atlas->cell(i, j);
      EXPECT_TRUE(cell.solved);
      EXPECT_GT(cell.normVoc, 0.0);
      EXPECT_GT(cell.execSeconds, 0.0);
      EXPECT_EQ(cell.origin, CellOrigin::kBuilt);
    }
}

TEST(AtlasBuilderTest, RebuildsAreBitIdentical) {
  const auto a = buildAtlas(smallBuild());
  const auto b = buildAtlas(smallBuild());
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 4; ++j)
      if (a->spec().validCell(i, j))
        EXPECT_EQ(*a->cell(i, j), *b->cell(i, j))
            << "cell (" << i << "," << j << ") differs between rebuilds";
}

TEST(AtlasBuilderTest, ParallelBuildMatchesSerialBuild) {
  AtlasBuildOptions parallel = smallBuild();
  parallel.threads = 4;
  const auto serial = buildAtlas(smallBuild());
  const auto threaded = buildAtlas(parallel);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 4; ++j)
      if (serial->spec().validCell(i, j))
        EXPECT_EQ(*serial->cell(i, j), *threaded->cell(i, j))
            << "thread interleaving changed cell (" << i << "," << j << ")";
}

TEST(AtlasBuilderTest, TieSnappingFoldsIdenticalCostWinners) {
  // Block- and Traditional-Rectangle share one closed form
  // (1 + (R_r + S_r)/T): any cell either would win is an exact tie between
  // the two, and the snap must fold the tie group onto its canonical
  // representative — the smallest enum, Block-Rectangle. If
  // Traditional-Rectangle ever surfaces as a winner the tie shimmered
  // through, and neighbor comparison would flag fake crossover fronts
  // between identically-priced cells.
  const auto atlas = buildAtlas(smallBuild());
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 4; ++j) {
      if (!atlas->spec().validCell(i, j)) continue;
      EXPECT_NE(atlas->cell(i, j)->shape,
                CandidateShape::kTraditionalRectangle)
          << "tie with Block-Rectangle leaked at (" << i << "," << j << ")";
    }
}

TEST(AtlasBuilderTest, ProgressHookSeesEveryCell) {
  AtlasBuildOptions options = smallBuild();
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> lastTotal{0};
  options.onCell = [&](std::size_t done, std::size_t total) {
    (void)done;
    calls.fetch_add(1);
    lastTotal.store(total);
  };
  buildAtlas(options);
  EXPECT_EQ(calls.load(), 26u);
  EXPECT_EQ(lastTotal.load(), 26u);
}

TEST(AtlasBuilderTest, SearchBackedBuildRecordsConfirmation) {
  AtlasBuildOptions options;
  options.spec.prMin = 2.0;
  options.spec.prMax = 4.0;
  options.spec.prSteps = 3;
  options.spec.rrMin = 1.0;
  options.spec.rrMax = 2.0;
  options.spec.rrSteps = 2;
  options.info.n = 20;
  options.info.searchBacked = true;
  options.info.searchRuns = 2;
  options.threads = 1;
  AtlasBuildReport report;
  const auto atlas = buildAtlas(options, &report);
  EXPECT_EQ(report.solved, 6u);
  // A tiny DFA budget can land on either side of the candidate; the
  // contract here is that the cross-check ran and was recorded per cell,
  // and that a rebuild reproduces the same verdicts (per-cell seeds).
  const auto again = buildAtlas(options);
  std::size_t confirmed = 0;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j) {
      if (!atlas->spec().validCell(i, j)) continue;
      EXPECT_EQ(atlas->cell(i, j)->searchConfirmed,
                again->cell(i, j)->searchConfirmed);
      if (atlas->cell(i, j)->searchConfirmed) ++confirmed;
    }
  EXPECT_EQ(report.searchConfirmed, confirmed);
}

TEST(AtlasBuilderTest, SolveAtlasCellRejectsInvalidCells) {
  const AtlasBuildOptions options = smallBuild();
  EXPECT_FALSE(
      solveAtlasCell(options.spec, options.info, 0, 3).has_value());
}

}  // namespace
}  // namespace pushpart
