#include "atlas/atlas.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pushpart {
namespace {

AtlasGridSpec smallSpec() {
  AtlasGridSpec spec;
  spec.prMin = 1.0;
  spec.prMax = 5.0;
  spec.prSteps = 5;  // step 1 along P_r
  spec.rrMin = 1.0;
  spec.rrMax = 3.0;
  spec.rrSteps = 3;  // step 1 along R_r
  return spec;
}

AtlasCell solvedCell(CandidateShape shape, double normVoc = 1.25) {
  AtlasCell cell;
  cell.solved = true;
  cell.shape = shape;
  cell.normVoc = normVoc;
  cell.execSeconds = 0.5;
  return cell;
}

/// Fills every valid cell of `atlas` with one uniform winner.
void fillUniform(PlanAtlas& atlas, CandidateShape shape) {
  const AtlasGridSpec& spec = atlas.spec();
  for (int i = 0; i < spec.prSteps; ++i)
    for (int j = 0; j < spec.rrSteps; ++j)
      if (spec.validCell(i, j)) atlas.insert(i, j, solvedCell(shape));
}

TEST(AtlasGridSpecTest, ValidateRejectsDegenerateGrids) {
  AtlasGridSpec bad = smallSpec();
  bad.prSteps = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = smallSpec();
  bad.prMax = bad.prMin;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = smallSpec();
  bad.rrMin = 0.0;  // speeds below 1 would put R_r under S_r = 1
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_NO_THROW(smallSpec().validate());
}

TEST(AtlasGridSpecTest, CellsBelowTheDiagonalAreInvalid) {
  const AtlasGridSpec spec = smallSpec();
  // (i=0, j=2) is P_r=1, R_r=3: the canonical form needs P_r >= R_r.
  EXPECT_FALSE(spec.validCell(0, 2));
  EXPECT_TRUE(spec.validCell(2, 2));  // P_r=3, R_r=3
  EXPECT_FALSE(spec.validCell(5, 0));  // out of range
  EXPECT_FALSE(spec.validCell(-1, 0));
}

TEST(PlanAtlasTest, AssignRoundsHalfUpDeterministically) {
  PlanAtlas atlas(smallSpec(), AtlasBuildInfo{});
  int i = -1, j = -1;
  // Exactly between grid points 2.0 and 3.0: round-half-up lands on 3.0.
  ASSERT_TRUE(atlas.assign(Ratio{2.5, 1, 1}, i, j));
  EXPECT_EQ(i, 2);
  EXPECT_EQ(j, 0);
  // Epsilon below the midpoint stays on the lower cell.
  ASSERT_TRUE(atlas.assign(Ratio{2.4999999, 1, 1}, i, j));
  EXPECT_EQ(i, 1);
  // The span edges belong to the edge cells.
  ASSERT_TRUE(atlas.assign(Ratio{5, 3, 1}, i, j));
  EXPECT_EQ(i, 4);
  EXPECT_EQ(j, 2);
  ASSERT_TRUE(atlas.assign(Ratio{1, 1, 1}, i, j));
  EXPECT_EQ(i, 0);
  EXPECT_EQ(j, 0);
}

TEST(PlanAtlasTest, AssignNormalizesBeforeGridMath) {
  PlanAtlas atlas(smallSpec(), AtlasBuildInfo{});
  int a1 = -1, b1 = -1, a2 = -1, b2 = -1;
  ASSERT_TRUE(atlas.assign(Ratio{3, 2, 1}, a1, b1));
  ASSERT_TRUE(atlas.assign(Ratio{6, 4, 2}, a2, b2));  // same machine, scaled
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(b1, b2);
}

TEST(PlanAtlasTest, AssignRejectsRatiosOutsideTheSpan) {
  PlanAtlas atlas(smallSpec(), AtlasBuildInfo{});
  int i = -1, j = -1;
  EXPECT_FALSE(atlas.assign(Ratio{50, 1, 1}, i, j));
  EXPECT_FALSE(atlas.assign(Ratio{3, 3.9, 1}, i, j));
}

TEST(PlanAtlasTest, LookupReportsMissReasons) {
  PlanAtlas atlas(smallSpec(), AtlasBuildInfo{});
  // Nothing solved yet: an in-span ratio misses as unsolved, with the cell
  // coordinates filled in so the prefetcher knows what to build.
  AtlasLookup miss = atlas.lookup(Ratio{3, 2, 1});
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.miss, AtlasMissReason::kUnsolved);
  EXPECT_EQ(miss.i, 2);
  EXPECT_EQ(miss.j, 1);

  AtlasLookup out = atlas.lookup(Ratio{50, 1, 1});
  EXPECT_EQ(out.miss, AtlasMissReason::kOutOfRange);
  EXPECT_EQ(out.i, -1);

  const PlanAtlas::Counters c = atlas.counters();
  EXPECT_EQ(c.lookups, 2u);
  EXPECT_EQ(c.unsolved, 1u);
  EXPECT_EQ(c.outOfRange, 1u);
  EXPECT_EQ(c.hits, 0u);
}

TEST(PlanAtlasTest, BoundaryCellsAreNeverServed) {
  PlanAtlas atlas(smallSpec(), AtlasBuildInfo{});
  fillUniform(atlas, CandidateShape::kBlockRectangle);
  // Flip one winner: it and its solved neighbors become boundary.
  atlas.insert(4, 0, solvedCell(CandidateShape::kSquareCorner));
  const AtlasLookup lk = atlas.lookup(Ratio{5, 1, 1});
  EXPECT_FALSE(lk.hit);
  EXPECT_EQ(lk.miss, AtlasMissReason::kBoundary);
  EXPECT_TRUE(atlas.cell(4, 0)->boundary);
  EXPECT_TRUE(atlas.cell(3, 0)->boundary);
  EXPECT_TRUE(atlas.cell(4, 1)->boundary);
  // Two cells away the front is invisible.
  EXPECT_FALSE(atlas.cell(2, 0)->boundary);
  EXPECT_EQ(atlas.boundaryCells().size(), 3u);
}

TEST(PlanAtlasTest, InsertRederivesBoundariesBothWays) {
  PlanAtlas atlas(smallSpec(), AtlasBuildInfo{});
  fillUniform(atlas, CandidateShape::kBlockRectangle);
  atlas.insert(4, 0, solvedCell(CandidateShape::kSquareCorner));
  ASSERT_TRUE(atlas.cell(3, 0)->boundary);
  // Re-inserting the uniform winner heals the front.
  atlas.insert(4, 0, solvedCell(CandidateShape::kBlockRectangle));
  EXPECT_FALSE(atlas.cell(3, 0)->boundary);
  EXPECT_FALSE(atlas.cell(4, 0)->boundary);
  EXPECT_TRUE(atlas.boundaryCells().empty());
}

TEST(PlanAtlasTest, InsertRejectsInvalidCells) {
  PlanAtlas atlas(smallSpec(), AtlasBuildInfo{});
  EXPECT_THROW(atlas.insert(0, 2, solvedCell(CandidateShape::kSquareCorner)),
               std::invalid_argument);
  EXPECT_THROW(atlas.insert(9, 0, solvedCell(CandidateShape::kSquareCorner)),
               std::invalid_argument);
}

TEST(PlanAtlasTest, BilinearInterpolationNeedsFourAgreeingCorners) {
  PlanAtlas atlas(smallSpec(), AtlasBuildInfo{});
  fillUniform(atlas, CandidateShape::kBlockRectangle);
  // Distinct corner values: interpolation must blend, not snap.
  atlas.insert(2, 0, solvedCell(CandidateShape::kBlockRectangle, 1.0));
  atlas.insert(3, 0, solvedCell(CandidateShape::kBlockRectangle, 2.0));
  atlas.insert(2, 1, solvedCell(CandidateShape::kBlockRectangle, 3.0));
  atlas.insert(3, 1, solvedCell(CandidateShape::kBlockRectangle, 4.0));

  const AtlasLookup mid = atlas.lookup(Ratio{3.5, 1.5, 1});
  ASSERT_TRUE(mid.hit);
  EXPECT_TRUE(mid.bilinear);
  EXPECT_NEAR(mid.interpNormVoc, 2.5, 1e-12);  // the four-corner average

  // Disagreeing corners: fall back to the assigned cell's own value. The
  // flipped corner (2,0) sits in the interpolation quad of 3.6:1.6:1 but the
  // assigned cell (3,1) stays off the new front.
  atlas.insert(2, 0, solvedCell(CandidateShape::kSquareRectangle, 1.0));
  const AtlasLookup nearest = atlas.lookup(Ratio{3.6, 1.6, 1});
  ASSERT_TRUE(nearest.hit) << "assigned cell (3,1) is off the new front";
  EXPECT_FALSE(nearest.bilinear);
  EXPECT_NEAR(nearest.interpNormVoc, 4.0, 1e-12);
}

TEST(PlanAtlasTest, HitCountersTrack) {
  PlanAtlas atlas(smallSpec(), AtlasBuildInfo{});
  fillUniform(atlas, CandidateShape::kBlockRectangle);
  ASSERT_TRUE(atlas.lookup(Ratio{3, 2, 1}).hit);
  ASSERT_TRUE(atlas.lookup(Ratio{4, 2, 1}).hit);
  const PlanAtlas::Counters c = atlas.counters();
  EXPECT_EQ(c.lookups, 2u);
  EXPECT_EQ(c.hits, 2u);
  EXPECT_EQ(c.inserts, 12u);  // 12 valid cells in the 5x3 grid
  EXPECT_EQ(atlas.solvedCells(), 12u);
}

}  // namespace
}  // namespace pushpart
