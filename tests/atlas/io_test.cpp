#include "atlas/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "atlas/builder.hpp"

namespace pushpart {
namespace {

std::shared_ptr<PlanAtlas> builtAtlas() {
  AtlasBuildOptions options;
  options.spec.prMin = 1.0;
  options.spec.prMax = 6.0;
  options.spec.prSteps = 6;
  options.spec.rrMin = 1.0;
  options.spec.rrMax = 3.0;
  options.spec.rrSteps = 3;
  options.info.n = 48;
  options.threads = 1;
  return buildAtlas(options);
}

std::string savedText(const PlanAtlas& atlas) {
  std::ostringstream os;
  saveAtlas(atlas, os);
  return os.str();
}

TEST(AtlasIoTest, SaveLoadSaveIsByteIdentical) {
  const auto atlas = builtAtlas();
  const std::string first = savedText(*atlas);

  std::istringstream is(first);
  const AtlasLoadReport report = tryLoadAtlas(is);
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.loaded, atlas->solvedCells());

  // A loaded cell must certify exactly like the freshly built one: the
  // round trip preserves every byte, including %.17g double digits.
  EXPECT_EQ(savedText(*report.atlas), first);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 3; ++j)
      if (atlas->spec().validCell(i, j))
        EXPECT_EQ(*report.atlas->cell(i, j), *atlas->cell(i, j));
}

TEST(AtlasIoTest, FutureVersionIsRefusedWhole) {
  std::string text = savedText(*builtAtlas());
  const std::string magic = "pushpart-atlas v2";
  const auto pos = text.find(magic);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, magic.size(), "pushpart-atlas v3");

  std::istringstream is(text);
  const AtlasLoadReport report = tryLoadAtlas(is);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.versionRefused);
  EXPECT_EQ(report.atlas, nullptr);
  EXPECT_FALSE(report.error.empty());
}

TEST(AtlasIoTest, GarbageIsRefused) {
  std::istringstream is("this is not an atlas\nat all\n");
  const AtlasLoadReport report = tryLoadAtlas(is);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.atlas, nullptr);
  EXPECT_FALSE(report.error.empty());
}

TEST(AtlasIoTest, CorruptCellIsSkippedAndBoundariesRederived) {
  const auto atlas = builtAtlas();
  std::string text = savedText(*atlas);

  // Flip one digit of the first cell record's checksum.
  const auto pos = text.find("\nc ");
  ASSERT_NE(pos, std::string::npos);
  char& digit = text[pos + 3];  // first hex digit of the fnv1a field
  digit = (digit == '0') ? '1' : '0';

  std::istringstream is(text);
  const AtlasLoadReport report = tryLoadAtlas(is);
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.loaded, atlas->solvedCells() - 1);
  EXPECT_EQ(report.atlas->solvedCells(), atlas->solvedCells() - 1);

  // Boundary flags were re-derived from the cells that survived: marking
  // again must be a no-op.
  const auto derived = report.atlas->boundaryCells();
  report.atlas->markBoundaries();
  EXPECT_EQ(report.atlas->boundaryCells(), derived);
}

TEST(AtlasIoTest, PathRoundTripsAtomically) {
  const auto atlas = builtAtlas();
  const std::string path = ::testing::TempDir() + "/pushpart_io_test.atlas";
  const std::size_t written = saveAtlas(*atlas, path);
  EXPECT_EQ(written, atlas->solvedCells());

  const AtlasLoadReport report = tryLoadAtlas(path);
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(savedText(*report.atlas), savedText(*atlas));
  std::remove(path.c_str());
}

TEST(AtlasIoTest, UnreadablePathReportsError) {
  const AtlasLoadReport report =
      tryLoadAtlas(::testing::TempDir() + "/pushpart_no_such.atlas");
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.versionRefused);
  EXPECT_FALSE(report.error.empty());
}

}  // namespace
}  // namespace pushpart
