// Differential check of the atlas surface against the closed forms: every
// solved cell's stored normalized VoC (measured on the discrete grid at the
// build granularity) must track closedFormVoC(winner, ratioAt) to the O(1/n)
// rounding the continuous derivation allows. A drift here means the surface
// the oracle certifies against no longer describes the partitions it serves.
#include <cmath>

#include <gtest/gtest.h>

#include "atlas/builder.hpp"
#include "model/closed_form.hpp"

namespace pushpart {
namespace {

TEST(AtlasDifferentialTest, StoredSurfaceTracksClosedForms) {
  AtlasBuildOptions options;
  options.spec.prMin = 1.0;
  options.spec.prMax = 20.0;
  options.spec.prSteps = 20;
  options.spec.rrMin = 1.0;
  options.spec.rrMax = 10.0;
  options.spec.rrSteps = 10;
  options.info.n = 96;
  options.threads = 1;
  AtlasBuildReport report;
  const auto atlas = buildAtlas(options, &report);
  ASSERT_GT(report.solved, 0u);

  std::size_t checked = 0;
  double worst = 0.0;
  for (int i = 0; i < options.spec.prSteps; ++i)
    for (int j = 0; j < options.spec.rrSteps; ++j) {
      if (!options.spec.validCell(i, j)) continue;
      const AtlasCell cell = *atlas->cell(i, j);
      ASSERT_TRUE(cell.solved);
      const Ratio at = options.spec.ratioAt(i, j);
      const double closed = closedFormVoC(cell.shape, at);
      ASSERT_TRUE(std::isfinite(closed))
          << "cell (" << i << "," << j << ") won with a shape the closed "
          << "form calls infeasible";
      // Discretization error: integer row/column splits at n = 96 shift
      // each sub-rectangle edge by up to one grid line.
      const double diff = std::fabs(cell.normVoc - closed);
      EXPECT_LE(diff, 0.08)
          << "cell (" << i << "," << j << ") at " << at.p << ":" << at.r
          << ":1 stored " << cell.normVoc << " vs closed form " << closed;
      worst = std::max(worst, diff);
      ++checked;
    }
  EXPECT_EQ(checked, report.solved);
  // The sweep should not be uniformly at the tolerance edge either.
  EXPECT_LT(worst, 0.08);
}

TEST(AtlasDifferentialTest, WinnerBeatsEveryFeasibleRival) {
  // The stored winner must be no worse (in closed form) than any rival
  // outside its tie group, up to the snap tolerance plus discretization.
  AtlasBuildOptions options;
  options.spec.prMin = 2.0;
  options.spec.prMax = 14.0;
  options.spec.prSteps = 7;
  options.spec.rrMin = 1.0;
  options.spec.rrMax = 4.0;
  options.spec.rrSteps = 4;
  options.info.n = 96;
  options.threads = 1;
  const auto atlas = buildAtlas(options);
  for (int i = 0; i < options.spec.prSteps; ++i)
    for (int j = 0; j < options.spec.rrSteps; ++j) {
      if (!options.spec.validCell(i, j)) continue;
      const AtlasCell cell = *atlas->cell(i, j);
      const Ratio at = options.spec.ratioAt(i, j);
      const double winner = closedFormVoC(cell.shape, at);
      for (int c = 0; c < kNumCandidates; ++c) {
        const double rival =
            closedFormVoC(static_cast<CandidateShape>(c), at);
        if (!std::isfinite(rival)) continue;
        EXPECT_LE(winner, rival * 1.05 + 0.08)
            << "cell (" << i << "," << j << ") serves "
            << candidateName(cell.shape) << " but "
            << candidateName(static_cast<CandidateShape>(c))
            << " is closed-form cheaper at " << at.p << ":" << at.r << ":1";
      }
    }
}

}  // namespace
}  // namespace pushpart
