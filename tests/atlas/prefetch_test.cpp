#include "atlas/prefetch.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "atlas/builder.hpp"

namespace pushpart {
namespace {

AtlasGridSpec smallSpec() {
  AtlasGridSpec spec;
  spec.prMin = 1.0;
  spec.prMax = 6.0;
  spec.prSteps = 6;
  spec.rrMin = 1.0;
  spec.rrMax = 3.0;
  spec.rrSteps = 3;
  return spec;
}

AtlasBuildInfo smallInfo() {
  AtlasBuildInfo info;
  info.n = 48;
  return info;
}

/// Spins until the prefetcher has solved `want` cells (generous deadline —
/// the worker thread shares one core with the test on CI).
void waitForSolved(const AtlasPrefetcher& prefetcher, std::uint64_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (prefetcher.counters().solved < want &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_GE(prefetcher.counters().solved, want) << "prefetch worker stalled";
}

TEST(AtlasPrefetchTest, PrefetchedCellsMatchTheOfflineBuilder) {
  const auto atlas =
      std::make_shared<PlanAtlas>(smallSpec(), smallInfo());
  AtlasPrefetcher prefetcher(atlas);
  // Center (2,1) plus its four valid neighbors — all unsolved, all queued.
  prefetcher.enqueueNeighborhood(2, 1);
  waitForSolved(prefetcher, 5);
  prefetcher.stop();

  EXPECT_EQ(prefetcher.counters().requested, 5u);
  EXPECT_EQ(prefetcher.counters().dropped, 0u);
  const std::pair<int, int> cells[] = {{2, 1}, {1, 1}, {3, 1}, {2, 0}, {2, 2}};
  for (const auto& [i, j] : cells) {
    const auto got = atlas->cell(i, j);
    ASSERT_TRUE(got.has_value() && got->solved)
        << "cell (" << i << "," << j << ") not prefetched";
    // Bit-identical to the offline builder's answer, modulo provenance.
    AtlasCell expected = *solveAtlasCell(smallSpec(), smallInfo(), i, j);
    expected.origin = CellOrigin::kPrefetched;
    expected.boundary = got->boundary;  // depends on which neighbors landed
    EXPECT_EQ(*got, expected);
  }
}

TEST(AtlasPrefetchTest, SolvedCellsAreNotRequeued) {
  const auto atlas =
      std::make_shared<PlanAtlas>(smallSpec(), smallInfo());
  AtlasPrefetcher prefetcher(atlas);
  prefetcher.enqueueNeighborhood(4, 2);
  // (4,2) with neighbors (3,2), (5,2), (4,1): all valid. 4 cells.
  waitForSolved(prefetcher, 4);
  const std::uint64_t requested = prefetcher.counters().requested;
  prefetcher.enqueueNeighborhood(4, 2);  // everything already solved
  prefetcher.stop();
  EXPECT_EQ(prefetcher.counters().requested, requested);
}

TEST(AtlasPrefetchTest, LookupsRaceSafelyWithInserts) {
  // Concurrent serving lookups while the worker inserts cells: the
  // shared_mutex discipline must hold under TSan.
  const auto atlas =
      std::make_shared<PlanAtlas>(smallSpec(), smallInfo());
  AtlasPrefetcher prefetcher(atlas);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 3; ++j)
      if (smallSpec().validCell(i, j)) prefetcher.enqueueNeighborhood(i, j);
  std::uint64_t hits = 0;
  for (int round = 0; round < 200; ++round) {
    const double pr = 1.0 + (round % 50) * 0.1;
    if (atlas->lookup(Ratio{pr, 1.0, 1.0}).hit) ++hits;
  }
  waitForSolved(prefetcher, 15);  // 15 valid cells in the 6x3 grid
  prefetcher.stop();
  EXPECT_EQ(atlas->counters().lookups, 200u);
  EXPECT_EQ(atlas->solvedCells(), 15u);
  (void)hits;
}

}  // namespace
}  // namespace pushpart
