#include "sim/mmm_sim.hpp"

#include <gtest/gtest.h>

#include "grid/builder.hpp"
#include "model/models.hpp"
#include "shapes/candidates.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

SimOptions flatOptions(const Ratio& ratio) {
  SimOptions opts;
  opts.machine.alphaSeconds = 0.0;
  opts.machine.sendElementSeconds = 8e-9;
  opts.machine.baseFlopSeconds = 1e-9;
  opts.machine.ratio = ratio;
  return opts;
}

TEST(MmmSimTest, ZeroLatencyMatchesAnalyticModelSCB) {
  Rng rng(5);
  const Ratio ratio{3, 2, 1};
  const auto q = randomPartition(20, ratio, rng);
  const auto opts = flatOptions(ratio);
  const auto sim = simulateMMM(Algo::kSCB, q, opts);
  const auto model = evalModel(Algo::kSCB, q, opts.machine);
  EXPECT_NEAR(sim.commSeconds, model.commSeconds, model.commSeconds * 1e-9);
  EXPECT_NEAR(sim.execSeconds, model.execSeconds, model.execSeconds * 1e-9);
}

TEST(MmmSimTest, ZeroLatencyMatchesAnalyticModelPCB) {
  Rng rng(6);
  const Ratio ratio{5, 2, 1};
  const auto q = randomPartition(20, ratio, rng);
  const auto opts = flatOptions(ratio);
  const auto sim = simulateMMM(Algo::kPCB, q, opts);
  const auto model = evalModel(Algo::kPCB, q, opts.machine);
  EXPECT_NEAR(sim.commSeconds, model.commSeconds, model.commSeconds * 1e-9);
}

TEST(MmmSimTest, ZeroLatencyMatchesAnalyticModelOverlap) {
  const Ratio ratio{10, 1, 1};
  const auto q = makeCandidate(CandidateShape::kSquareCorner, 60, ratio);
  const auto opts = flatOptions(ratio);
  for (Algo algo : {Algo::kSCO, Algo::kPCO}) {
    const auto sim = simulateMMM(algo, q, opts);
    const auto model = evalModel(algo, q, opts.machine);
    EXPECT_NEAR(sim.execSeconds, model.execSeconds, model.execSeconds * 1e-9)
        << algoName(algo);
    EXPECT_NEAR(sim.overlapSeconds, model.overlapSeconds,
                model.overlapSeconds * 1e-9 + 1e-15)
        << algoName(algo);
  }
}

TEST(MmmSimTest, LatencyIncreasesTime) {
  Rng rng(7);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(16, ratio, rng);
  auto opts = flatOptions(ratio);
  const double base = simulateMMM(Algo::kSCB, q, opts).commSeconds;
  opts.machine.alphaSeconds = 1e-4;
  const double withAlpha = simulateMMM(Algo::kSCB, q, opts).commSeconds;
  EXPECT_GT(withAlpha, base);
}

TEST(MmmSimTest, ChunkingExposesMoreLatency) {
  Rng rng(8);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(16, ratio, rng);
  auto opts = flatOptions(ratio);
  opts.machine.alphaSeconds = 1e-4;
  const double oneChunk = simulateMMM(Algo::kSCB, q, opts).commSeconds;
  opts.chunksPerPair = 8;
  const double eightChunks = simulateMMM(Algo::kSCB, q, opts).commSeconds;
  EXPECT_GT(eightChunks, oneChunk);
  // Chunking preserves total volume: with α = 0 nothing changes.
  opts.machine.alphaSeconds = 0.0;
  const double flat8 = simulateMMM(Algo::kSCB, q, opts).commSeconds;
  opts.chunksPerPair = 1;
  const double flat1 = simulateMMM(Algo::kSCB, q, opts).commSeconds;
  EXPECT_NEAR(flat8, flat1, flat1 * 1e-9);
}

TEST(MmmSimTest, StarTopologyCostsAtLeastFullyConnected) {
  Rng rng(9);
  const Ratio ratio{3, 2, 1};
  const auto q = randomPartition(18, ratio, rng);
  for (Algo algo : {Algo::kSCB, Algo::kPCB, Algo::kPIO}) {
    auto opts = flatOptions(ratio);
    const double full = simulateMMM(algo, q, opts).execSeconds;
    opts.topology = Topology::kStar;
    const double star = simulateMMM(algo, q, opts).execSeconds;
    EXPECT_GE(star + 1e-15, full) << algoName(algo);
  }
}

TEST(MmmSimTest, PioTotalVolumeMatchesBulk) {
  // The per-step schedule moves exactly the same elements as the bulk
  // algorithms (fully-connected: element·hops == VoC).
  Rng rng(10);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(14, ratio, rng);
  const auto opts = flatOptions(ratio);
  const auto pio = simulateMMM(Algo::kPIO, q, opts);
  const auto scb = simulateMMM(Algo::kSCB, q, opts);
  EXPECT_EQ(pio.network.elementsMoved, scb.network.elementsMoved);
  EXPECT_EQ(pio.network.elementsMoved, q.volumeOfCommunication());
}

TEST(MmmSimTest, UniformPartitionHasNoTraffic) {
  Partition q(12);
  const auto opts = flatOptions(Ratio{2, 1, 1});
  for (Algo algo : kAllAlgos) {
    const auto sim = simulateMMM(algo, q, opts);
    EXPECT_EQ(sim.network.messagesSent, 0) << algoName(algo);
    EXPECT_GT(sim.execSeconds, 0.0) << algoName(algo);
  }
}

TEST(MmmSimTest, SquareCornerBeatsBlockRectangleAtHighRatio) {
  // Fig. 14's shape comparison reproduced on the simulator.
  const Ratio ratio{10, 1, 1};
  const auto opts = flatOptions(ratio);
  const auto sc = makeCandidate(CandidateShape::kSquareCorner, 80, ratio);
  const auto br = makeCandidate(CandidateShape::kBlockRectangle, 80, ratio);
  EXPECT_LT(simulateMMM(Algo::kSCB, sc, opts).commSeconds,
            simulateMMM(Algo::kSCB, br, opts).commSeconds);
}

TEST(MmmSimTest, PioBlockOneMatchesDefault) {
  Rng rng(21);
  const Ratio ratio{3, 1, 1};
  const auto q = randomPartition(16, ratio, rng);
  auto opts = flatOptions(ratio);
  const double base = simulateMMM(Algo::kPIO, q, opts).execSeconds;
  opts.pioBlockSize = 1;
  EXPECT_DOUBLE_EQ(simulateMMM(Algo::kPIO, q, opts).execSeconds, base);
}

TEST(MmmSimTest, PioBlockingAmortizesLatency) {
  Rng rng(22);
  const Ratio ratio{3, 1, 1};
  const auto q = randomPartition(20, ratio, rng);
  auto opts = flatOptions(ratio);
  opts.machine.alphaSeconds = 1e-4;  // heavy per-message latency
  opts.pioBlockSize = 1;
  const double fine = simulateMMM(Algo::kPIO, q, opts).execSeconds;
  opts.pioBlockSize = q.n();
  const double bulk = simulateMMM(Algo::kPIO, q, opts).execSeconds;
  EXPECT_LT(bulk, fine);
}

TEST(MmmSimTest, PioBlockingPreservesTotalVolume) {
  Rng rng(23);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(14, ratio, rng);
  auto opts = flatOptions(ratio);
  for (int b : {1, 3, 7, 14}) {
    opts.pioBlockSize = b;
    EXPECT_EQ(simulateMMM(Algo::kPIO, q, opts).network.elementsMoved,
              q.volumeOfCommunication())
        << "blockSize=" << b;
  }
}

TEST(MmmSimTest, PioSimRefinesBlockedModelDownward) {
  // Eq. 9 charges each step's full volume serially; the simulator lets
  // different senders' NICs proceed in parallel, so it can only be faster —
  // never slower — than the analytic charge, at every block size.
  Rng rng(24);
  const Ratio ratio{4, 2, 1};
  const auto q = randomPartition(16, ratio, rng);
  auto opts = flatOptions(ratio);
  for (int b : {1, 2, 4, 16}) {
    opts.pioBlockSize = b;
    const auto sim = simulateMMM(Algo::kPIO, q, opts);
    const auto model = evalPioBlocked(q, opts.machine, b);
    EXPECT_LE(sim.execSeconds, model.execSeconds * (1 + 1e-9))
        << "blockSize=" << b;
    // Same elements move either way.
    EXPECT_EQ(sim.network.elementsMoved, q.volumeOfCommunication());
  }
}

TEST(MmmSimTest, InvalidPioBlockRejected) {
  Partition q(8);
  SimOptions opts = flatOptions(Ratio{2, 1, 1});
  opts.pioBlockSize = 0;
  EXPECT_THROW(simulateMMM(Algo::kPIO, q, opts), CheckError);
}

TEST(MmmSimTest, InvalidChunksRejected) {
  Partition q(8);
  SimOptions opts = flatOptions(Ratio{2, 1, 1});
  opts.chunksPerPair = 0;
  EXPECT_THROW(simulateMMM(Algo::kSCB, q, opts), CheckError);
}

}  // namespace
}  // namespace pushpart
