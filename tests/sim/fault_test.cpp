#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "grid/builder.hpp"
#include "sim/mmm_sim.hpp"
#include "sim/network.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlanTest, DefaultPlanIsInert) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.validate();  // must not throw
}

TEST(FaultPlanTest, AnyFaultEnablesThePlan) {
  FaultPlan drops;
  drops.dropProbability = 0.1;
  EXPECT_TRUE(drops.enabled());

  FaultPlan spiked;
  spiked.spikes.push_back({0.0, 1.0, 2.0, 2.0});
  EXPECT_TRUE(spiked.enabled());

  FaultPlan stalled;
  stalled.stalls.push_back({Proc::R, 0.0, 1.0});
  EXPECT_TRUE(stalled.enabled());

  FaultPlan lethal;
  lethal.death = ProcDeath{Proc::P, 1.0};
  EXPECT_TRUE(lethal.enabled());
}

TEST(FaultPlanTest, ValidationRejectsBadValues) {
  FaultPlan plan;
  plan.dropProbability = 1.5;
  EXPECT_THROW(plan.validate(), CheckError);
  plan.dropProbability = -0.1;
  EXPECT_THROW(plan.validate(), CheckError);

  plan = FaultPlan{};
  plan.spikes.push_back({2.0, 1.0, 2.0, 2.0});  // inverted window
  EXPECT_THROW(plan.validate(), CheckError);
  plan.spikes.back() = {0.0, 1.0, 0.0, 1.0};  // non-positive factor
  EXPECT_THROW(plan.validate(), CheckError);

  plan = FaultPlan{};
  plan.stalls.push_back({Proc::R, -1.0, 1.0});
  EXPECT_THROW(plan.validate(), CheckError);

  plan = FaultPlan{};
  plan.death = ProcDeath{Proc::S, -0.5};
  EXPECT_THROW(plan.validate(), CheckError);
}

TEST(RetryPolicyTest, ValidationRejectsBadValues) {
  RetryPolicy policy;
  policy.maxAttempts = 0;
  EXPECT_THROW(policy.validate(), CheckError);

  policy = RetryPolicy{};
  policy.timeoutSeconds = 0.0;
  EXPECT_THROW(policy.validate(), CheckError);

  policy = RetryPolicy{};
  policy.backoffFactor = 0.5;
  EXPECT_THROW(policy.validate(), CheckError);

  policy = RetryPolicy{};
  policy.jitterFraction = 1.0;
  EXPECT_THROW(policy.validate(), CheckError);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndIsBounded) {
  RetryPolicy policy;
  policy.backoffSeconds = 1e-4;
  policy.backoffFactor = 2.0;
  policy.backoffMaxSeconds = 4e-4;
  policy.jitterFraction = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.backoffBeforeRetry(1, rng), 1e-4);
  EXPECT_DOUBLE_EQ(policy.backoffBeforeRetry(2, rng), 2e-4);
  EXPECT_DOUBLE_EQ(policy.backoffBeforeRetry(3, rng), 4e-4);
  EXPECT_DOUBLE_EQ(policy.backoffBeforeRetry(10, rng), 4e-4);  // capped
  EXPECT_THROW(policy.backoffBeforeRetry(0, rng), CheckError);
}

TEST(RetryPolicyTest, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.jitterFraction = 0.25;
  Rng a(9), b(9);
  for (int r = 1; r <= 6; ++r) {
    const double da = policy.backoffBeforeRetry(r, a);
    const double db = policy.backoffBeforeRetry(r, b);
    EXPECT_DOUBLE_EQ(da, db);
    const double nominal =
        std::min(policy.backoffSeconds * std::pow(policy.backoffFactor, r - 1),
                 policy.backoffMaxSeconds);
    EXPECT_GE(da, nominal * 0.75);
    EXPECT_LE(da, nominal * 1.25);
  }
}

TEST(RetryPolicyTest, DecorrelatedJitterStaysInsideItsEnvelope) {
  RetryPolicy policy;
  policy.jitterMode = JitterMode::kDecorrelated;
  policy.backoffSeconds = 1e-4;
  policy.backoffMaxSeconds = 5e-3;
  Rng a(9), b(9);
  double envelope = policy.backoffSeconds;  // max possible delay_{r-1}
  for (int r = 1; r <= 8; ++r) {
    const double da = policy.backoffBeforeRetry(r, a);
    EXPECT_DOUBLE_EQ(da, policy.backoffBeforeRetry(r, b));  // deterministic
    EXPECT_GE(da, policy.backoffSeconds);
    envelope = std::min(policy.backoffMaxSeconds, 3.0 * envelope);
    EXPECT_LE(da, envelope);
  }
}

// The point of decorrelated jitter: retriers that share a schedule must not
// collide round after round. With relative jitter every retrier at retry r
// sits within ±jitterFraction of the same exponential point; decorrelated
// draws spread over [base, 3 · previous], so across seeds the delays at the
// same retry number disperse by an order of magnitude, not a few percent.
TEST(RetryPolicyTest, DecorrelatedJitterSpreadsFarWiderThanRelative) {
  constexpr int kPeers = 64;
  constexpr int kRetry = 4;
  const auto spreadAtRetry = [&](JitterMode mode) {
    RetryPolicy policy;
    policy.jitterMode = mode;
    policy.backoffSeconds = 1e-4;
    policy.backoffFactor = 2.0;
    policy.backoffMaxSeconds = 1.0;  // cap far away: measure pure spread
    double lo = std::numeric_limits<double>::infinity(), hi = 0.0;
    for (int peer = 0; peer < kPeers; ++peer) {
      Rng rng(static_cast<std::uint64_t>(1000 + peer));
      const double d = policy.backoffBeforeRetry(kRetry, rng);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    return hi / lo;
  };

  const double relative = spreadAtRetry(JitterMode::kRelative);
  const double decorrelated = spreadAtRetry(JitterMode::kDecorrelated);
  // Relative jitter at ±10% can spread at most 1.1/0.9 ≈ 1.22x.
  EXPECT_LE(relative, 1.25);
  // Decorrelated draws from nearly the whole [base, 27 · base] envelope.
  EXPECT_GE(decorrelated, 4.0);
  EXPECT_GT(decorrelated, relative * 3.0);
}

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjectorTest, DeathSemantics) {
  FaultPlan plan;
  plan.death = ProcDeath{Proc::R, 5.0};
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.aliveAt(Proc::R, 4.999));
  EXPECT_FALSE(injector.aliveAt(Proc::R, 5.0));
  EXPECT_FALSE(injector.aliveAt(Proc::R, 100.0));
  EXPECT_TRUE(injector.aliveAt(Proc::P, 100.0));
  ASSERT_TRUE(injector.deathTime(Proc::R).has_value());
  EXPECT_DOUBLE_EQ(*injector.deathTime(Proc::R), 5.0);
  EXPECT_FALSE(injector.deathTime(Proc::S).has_value());
}

TEST(FaultInjectorTest, SpikeFactorsMultiplyInsideWindows) {
  FaultPlan plan;
  plan.spikes.push_back({1.0, 3.0, 2.0, 3.0});
  plan.spikes.push_back({2.0, 4.0, 5.0, 7.0});
  FaultInjector injector(plan);
  EXPECT_DOUBLE_EQ(injector.alphaFactorAt(0.5), 1.0);
  EXPECT_DOUBLE_EQ(injector.alphaFactorAt(1.5), 2.0);
  EXPECT_DOUBLE_EQ(injector.alphaFactorAt(2.5), 10.0);  // overlap: 2·5
  EXPECT_DOUBLE_EQ(injector.betaFactorAt(2.5), 21.0);   // 3·7
  EXPECT_DOUBLE_EQ(injector.alphaFactorAt(3.5), 5.0);
  EXPECT_DOUBLE_EQ(injector.alphaFactorAt(4.0), 1.0);  // end is exclusive
}

TEST(FaultInjectorTest, StallWindowsChainToAFixpoint) {
  FaultPlan plan;
  plan.stalls.push_back({Proc::R, 1.0, 1.0});
  plan.stalls.push_back({Proc::R, 2.0, 1.0});  // back-to-back
  FaultInjector injector(plan);
  EXPECT_DOUBLE_EQ(injector.stallClearedAt(Proc::R, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(injector.stallClearedAt(Proc::R, 1.5), 3.0);
  EXPECT_DOUBLE_EQ(injector.stallClearedAt(Proc::R, 2.5), 3.0);
  EXPECT_DOUBLE_EQ(injector.stallClearedAt(Proc::R, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(injector.stallClearedAt(Proc::S, 1.5), 1.5);
}

TEST(FaultInjectorTest, DropDrawsAreSeedDeterministic) {
  FaultPlan plan;
  plan.seed = 77;
  plan.dropProbability = 0.5;
  FaultInjector a(plan), b(plan);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.dropHop(), b.dropHop());

  plan.dropProbability = 0.0;
  FaultInjector never(plan);
  plan.dropProbability = 1.0;
  FaultInjector always(plan);
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(never.dropHop());
    EXPECT_TRUE(always.dropHop());
  }
}

// --------------------------------------------------- Network::sendReliable

Machine flatMachine() {
  Machine m;
  m.alphaSeconds = 0.0;
  m.sendElementSeconds = 1.0;
  m.ratio = Ratio{2, 1, 1};
  return m;
}

RetryPolicy unitPolicy() {
  RetryPolicy policy;
  policy.timeoutSeconds = 1.0;
  policy.backoffSeconds = 0.5;
  policy.backoffMaxSeconds = 2.0;
  policy.jitterFraction = 0.0;
  return policy;
}

TEST(SendReliableTest, RequiresAFaultInjector) {
  EventQueue events;
  Network net(events, flatMachine(), Topology::kFullyConnected);
  EXPECT_THROW(net.sendReliable({Proc::R, Proc::P, 5}, 0.0, unitPolicy(),
                                [](const TransferOutcome&) {}),
               CheckError);
}

TEST(SendReliableTest, InertPlanDeliversOnTheFirstAttempt) {
  EventQueue events;
  FaultInjector injector(FaultPlan{});
  Network net(events, flatMachine(), Topology::kFullyConnected, StarConfig{},
              &injector);
  TransferOutcome out;
  net.sendReliable({Proc::R, Proc::P, 5}, 0.0, unitPolicy(),
                   [&](const TransferOutcome& o) { out = o; });
  events.run();
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_DOUBLE_EQ(out.at, 5.0);  // β·M, same as the unreliable path
  EXPECT_EQ(net.stats().retriesSent, 0);
  EXPECT_EQ(net.stats().dropsInjected, 0);
}

TEST(SendReliableTest, RetriesUntilDeliveryUnderHeavyLoss) {
  EventQueue events;
  FaultPlan plan;
  plan.seed = 3;
  plan.dropProbability = 0.9;
  FaultInjector injector(plan);
  Network net(events, flatMachine(), Topology::kFullyConnected, StarConfig{},
              &injector);
  RetryPolicy policy = unitPolicy();
  policy.maxAttempts = 200;  // delivery is (statistically) certain
  TransferOutcome out;
  net.sendReliable({Proc::R, Proc::P, 5}, 0.0, policy,
                   [&](const TransferOutcome& o) { out = o; });
  events.run();
  ASSERT_TRUE(out.delivered);
  EXPECT_GT(out.attempts, 1);
  EXPECT_GT(out.at, 5.0);  // timeouts and backoffs delayed the delivery
  EXPECT_EQ(net.stats().retriesSent, out.attempts - 1);
  EXPECT_EQ(net.stats().dropsInjected, out.attempts - 1);
  EXPECT_EQ(net.stats().transfersAbandoned, 0);
}

TEST(SendReliableTest, AbandonsAfterMaxAttempts) {
  EventQueue events;
  FaultPlan plan;
  plan.dropProbability = 1.0;
  FaultInjector injector(plan);
  Network net(events, flatMachine(), Topology::kFullyConnected, StarConfig{},
              &injector);
  RetryPolicy policy = unitPolicy();
  policy.maxAttempts = 3;
  TransferOutcome out;
  net.sendReliable({Proc::R, Proc::P, 5}, 0.0, policy,
                   [&](const TransferOutcome& o) { out = o; });
  events.run();
  EXPECT_FALSE(out.delivered);
  EXPECT_FALSE(out.peerDead);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_EQ(net.stats().dropsInjected, 3);
  EXPECT_EQ(net.stats().retriesSent, 2);
  EXPECT_EQ(net.stats().transfersAbandoned, 1);
}

TEST(SendReliableTest, SingleAttemptExhaustionFailsAtTheDetectionInstant) {
  // maxAttempts = 1 is pure exhaustion: one hop, one ack timeout, no retry
  // and no backoff draw. The failure lands exactly when the sender learns of
  // the loss — hop end (β·M = 5) plus the ack timeout (1).
  EventQueue events;
  FaultPlan plan;
  plan.dropProbability = 1.0;
  FaultInjector injector(plan);
  Network net(events, flatMachine(), Topology::kFullyConnected, StarConfig{},
              &injector);
  RetryPolicy policy = unitPolicy();
  policy.maxAttempts = 1;
  TransferOutcome out;
  net.sendReliable({Proc::R, Proc::P, 5}, 0.0, policy,
                   [&](const TransferOutcome& o) { out = o; });
  events.run();
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_DOUBLE_EQ(out.at, 6.0);
  EXPECT_EQ(net.stats().retriesSent, 0);
  EXPECT_EQ(net.stats().transfersAbandoned, 1);
}

TEST(SendReliableTest, ExhaustionFollowsTheCappedBackoffSchedule) {
  // Total loss with zero jitter makes the whole retry schedule exact. Every
  // attempt costs hop (5) + ack timeout (1); the backoffs between attempts
  // are 0.5, 1.0, then the 2.0 ceiling twice — the cap must hold the last
  // two retries at backoffMaxSeconds instead of 2.0 and 4.0:
  //   abandon at 5 · 6 + (0.5 + 1.0 + 2.0 + 2.0) = 35.5.
  EventQueue events;
  FaultPlan plan;
  plan.dropProbability = 1.0;
  FaultInjector injector(plan);
  Network net(events, flatMachine(), Topology::kFullyConnected, StarConfig{},
              &injector);
  RetryPolicy policy = unitPolicy();  // backoff 0.5, factor 2, cap 2.0
  policy.maxAttempts = 5;
  TransferOutcome out;
  net.sendReliable({Proc::R, Proc::P, 5}, 0.0, policy,
                   [&](const TransferOutcome& o) { out = o; });
  events.run();
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 5);
  EXPECT_DOUBLE_EQ(out.at, 35.5);
  EXPECT_EQ(net.stats().dropsInjected, 5);
  EXPECT_EQ(net.stats().retriesSent, 4);
  EXPECT_EQ(net.stats().transfersAbandoned, 1);
}

TEST(SendReliableTest, FailsFastOnADeadPeer) {
  EventQueue events;
  FaultPlan plan;
  plan.death = ProcDeath{Proc::P, 0.0};
  FaultInjector injector(plan);
  Network net(events, flatMachine(), Topology::kFullyConnected, StarConfig{},
              &injector);
  TransferOutcome out;
  net.sendReliable({Proc::R, Proc::P, 5}, 1.0, unitPolicy(),
                   [&](const TransferOutcome& o) { out = o; });
  events.run();
  EXPECT_FALSE(out.delivered);
  EXPECT_TRUE(out.peerDead);
  EXPECT_EQ(net.stats().deadEndpointFailures, 1);
}

// ------------------------------------------------- simulateMMM under faults

SimOptions faultyOptions(const Ratio& ratio) {
  SimOptions opts;
  opts.machine.alphaSeconds = 0.0;
  opts.machine.sendElementSeconds = 8e-9;
  opts.machine.baseFlopSeconds = 1e-9;
  opts.machine.ratio = ratio;
  opts.chunksPerPair = 4;
  // Retry knobs scaled to the microsecond-sized runs these tests simulate.
  opts.retry.timeoutSeconds = 1e-5;
  opts.retry.backoffSeconds = 1e-6;
  opts.retry.backoffMaxSeconds = 1e-4;
  return opts;
}

TEST(SimFaultTest, DisabledPlanKeepsTheFaultFreePathBitIdentical) {
  Rng rng(11);
  const Ratio ratio{3, 2, 1};
  const auto q = randomPartition(20, ratio, rng);
  auto opts = faultyOptions(ratio);
  const auto base = simulateMMM(Algo::kSCB, q, opts);
  opts.faults.seed = 999;  // still no faults configured → still disabled
  const auto again = simulateMMM(Algo::kSCB, q, opts);
  EXPECT_EQ(base.execSeconds, again.execSeconds);
  EXPECT_EQ(base.commSeconds, again.commSeconds);
  EXPECT_EQ(base.network.messagesSent, again.network.messagesSent);
  EXPECT_EQ(again.network.dropsInjected, 0);
  EXPECT_EQ(again.network.retriesSent, 0);
  EXPECT_TRUE(again.completed);
  EXPECT_FALSE(again.recovery.processorDied);
}

TEST(SimFaultTest, DropsForceRetriesAndInflateTheRun) {
  Rng rng(12);
  const Ratio ratio{3, 2, 1};
  const auto q = randomPartition(20, ratio, rng);
  auto opts = faultyOptions(ratio);
  const double baseline = simulateMMM(Algo::kSCB, q, opts).execSeconds;
  opts.faults.seed = 5;
  opts.faults.dropProbability = 0.3;
  const auto faulty = simulateMMM(Algo::kSCB, q, opts);
  EXPECT_TRUE(faulty.completed);
  EXPECT_GT(faulty.network.dropsInjected, 0);
  EXPECT_GT(faulty.network.retriesSent, 0);
  EXPECT_GT(faulty.execSeconds, baseline);
}

TEST(SimFaultTest, SameSeedReproducesTheRunExactly) {
  Rng rng(13);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(16, ratio, rng);
  auto opts = faultyOptions(ratio);
  opts.faults.seed = 21;
  opts.faults.dropProbability = 0.25;
  const auto a = simulateMMM(Algo::kPCB, q, opts);
  const auto b = simulateMMM(Algo::kPCB, q, opts);
  EXPECT_EQ(a.execSeconds, b.execSeconds);
  EXPECT_EQ(a.network.dropsInjected, b.network.dropsInjected);
  EXPECT_EQ(a.network.retriesSent, b.network.retriesSent);
}

TEST(SimFaultTest, LatencySpikeSlowsCommunication) {
  Rng rng(14);
  const Ratio ratio{3, 1, 1};
  const auto q = randomPartition(16, ratio, rng);
  auto opts = faultyOptions(ratio);
  const double baseline = simulateMMM(Algo::kSCB, q, opts).execSeconds;
  opts.faults.spikes.push_back({0.0, 1.0, 1.0, 8.0});  // 8× β all run long
  const auto spiked = simulateMMM(Algo::kSCB, q, opts);
  EXPECT_TRUE(spiked.completed);
  EXPECT_GT(spiked.execSeconds, baseline);
}

TEST(SimFaultTest, NicStallDelaysTheSender) {
  Rng rng(15);
  const Ratio ratio{3, 1, 1};
  const auto q = randomPartition(16, ratio, rng);
  auto opts = faultyOptions(ratio);
  const double baseline = simulateMMM(Algo::kSCB, q, opts).execSeconds;
  // Every processor's NIC is down for the first 10× of the baseline run.
  for (Proc p : kAllProcs)
    opts.faults.stalls.push_back({p, 0.0, baseline * 10});
  const auto stalled = simulateMMM(Algo::kSCB, q, opts);
  EXPECT_TRUE(stalled.completed);
  EXPECT_GT(stalled.execSeconds, baseline);
}

TEST(SimFaultTest, ExhaustedRetriesMarkTheRunIncomplete) {
  Rng rng(16);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(12, ratio, rng);
  auto opts = faultyOptions(ratio);
  opts.faults.dropProbability = 1.0;
  opts.retry.maxAttempts = 2;
  const auto result = simulateMMM(Algo::kSCB, q, opts);
  EXPECT_FALSE(result.completed);
  EXPECT_GT(result.network.transfersAbandoned, 0);
}

TEST(SimFaultTest, AcceptanceDropsPlusMidRunDeathRecoversViaRebalance) {
  // The issue's acceptance scenario: drop probability 0.05 plus a processor
  // death at 50% of the baseline run, fixed seed. The run must complete via
  // the degrade-to-survivors rebalance, the failover schedule must verify,
  // and the fault counters must be nonzero.
  Rng rng(17);
  const Ratio ratio{5, 2, 1};
  const auto q = randomPartition(24, ratio, rng);
  auto opts = faultyOptions(ratio);
  opts.chunksPerPair = 6;
  const double baseline = simulateMMM(Algo::kSCB, q, opts).execSeconds;
  opts.faults.seed = 7;
  opts.faults.dropProbability = 0.05;
  opts.faults.death = ProcDeath{Proc::R, baseline * 0.5};
  const auto result = simulateMMM(Algo::kSCB, q, opts);
  EXPECT_TRUE(result.completed);
  ASSERT_TRUE(result.recovery.processorDied);
  EXPECT_EQ(result.recovery.deadProc, Proc::R);
  EXPECT_TRUE(result.recovery.failoverPlanVerified);
  EXPECT_GT(result.recovery.reassignedElements, 0);
  EXPECT_GT(result.recovery.refetchedElements, 0);
  EXPECT_GT(result.recovery.recoverySeconds, 0.0);
  EXPECT_GT(result.recovery.vocAfter, 0);
  EXPECT_GE(result.recovery.deathDetectedAt, baseline * 0.5);
  EXPECT_GT(result.network.dropsInjected + result.network.retriesSent, 0);
  EXPECT_GT(result.execSeconds, baseline);
}

TEST(SimFaultTest, DeathWithoutRebalanceAbortsTheRun) {
  Rng rng(18);
  const Ratio ratio{3, 2, 1};
  const auto q = randomPartition(16, ratio, rng);
  auto opts = faultyOptions(ratio);
  const double baseline = simulateMMM(Algo::kSCB, q, opts).execSeconds;
  opts.faults.death = ProcDeath{Proc::S, baseline * 0.5};
  opts.rebalanceOnDeath = false;
  const auto result = simulateMMM(Algo::kSCB, q, opts);
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.recovery.processorDied);
  EXPECT_FALSE(result.recovery.failoverPlanVerified);
}

TEST(SimFaultTest, EveryAlgorithmSurvivesAMidRunDeath) {
  Rng rng(19);
  const Ratio ratio{4, 2, 1};
  const auto q = randomPartition(20, ratio, rng);
  for (Algo algo : kAllAlgos) {
    auto opts = faultyOptions(ratio);
    const double baseline = simulateMMM(algo, q, opts).execSeconds;
    opts.faults.seed = 23;
    opts.faults.death = ProcDeath{Proc::R, baseline * 0.5};
    const auto result = simulateMMM(algo, q, opts);
    EXPECT_TRUE(result.completed) << algoName(algo);
    EXPECT_TRUE(result.recovery.processorDied) << algoName(algo);
    EXPECT_TRUE(result.recovery.failoverPlanVerified) << algoName(algo);
    EXPECT_GT(result.recovery.reassignedElements, 0) << algoName(algo);
  }
}

TEST(SimFaultTest, DeathAfterTheRunFinishesIsHarmless) {
  Rng rng(20);
  const Ratio ratio{3, 2, 1};
  const auto q = randomPartition(16, ratio, rng);
  for (Algo algo : {Algo::kSCB, Algo::kPIO}) {
    auto opts = faultyOptions(ratio);
    const double baseline = simulateMMM(algo, q, opts).execSeconds;
    opts.faults.death = ProcDeath{Proc::R, baseline * 2};
    const auto result = simulateMMM(algo, q, opts);
    EXPECT_TRUE(result.completed) << algoName(algo);
    EXPECT_FALSE(result.recovery.processorDied) << algoName(algo);
    EXPECT_NEAR(result.execSeconds, baseline, baseline * 1e-9)
        << algoName(algo);
  }
}

// --------------------------------------------------------- cluster faults

TEST(ClusterFaultPlanTest, DefaultPlanIsInert) {
  ClusterFaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.validate(3);  // must not throw
}

TEST(ClusterFaultPlanTest, AnyFaultEnablesThePlan) {
  ClusterFaultPlan killed;
  killed.kills.push_back({1, 1.0, std::nullopt});
  EXPECT_TRUE(killed.enabled());

  ClusterFaultPlan cut;
  cut.partitions.push_back({kRouterEndpoint, 2, 0.0, 1.0});
  EXPECT_TRUE(cut.enabled());

  ClusterFaultPlan flappy;
  flappy.flaps.push_back({0, 0.0, 2.0, 0.5, 0.5});
  EXPECT_TRUE(flappy.enabled());

  ClusterFaultPlan lossy;
  lossy.heartbeatDropProbability = 0.1;
  EXPECT_TRUE(lossy.enabled());
}

TEST(ClusterFaultPlanTest, ValidationRejectsBadValues) {
  ClusterFaultPlan plan;
  plan.kills.push_back({3, 1.0, std::nullopt});  // node id out of range
  EXPECT_THROW(plan.validate(3), CheckError);

  plan = ClusterFaultPlan{};
  plan.kills.push_back({0, 2.0, 1.0});  // rejoin before the kill
  EXPECT_THROW(plan.validate(3), CheckError);

  plan = ClusterFaultPlan{};
  plan.partitions.push_back({1, 1, 0.0, 1.0});  // endpoints must differ
  EXPECT_THROW(plan.validate(3), CheckError);

  plan = ClusterFaultPlan{};
  plan.partitions.push_back({kRouterEndpoint, 0, 2.0, 1.0});  // inverted
  EXPECT_THROW(plan.validate(3), CheckError);

  plan = ClusterFaultPlan{};
  plan.flaps.push_back({0, 0.0, 2.0, 0.0, 0.5});  // non-positive period
  EXPECT_THROW(plan.validate(3), CheckError);

  plan = ClusterFaultPlan{};
  plan.slowNodes.push_back({0, 0.0, 2.0, 0.5});  // factor < 1
  EXPECT_THROW(plan.validate(3), CheckError);

  plan = ClusterFaultPlan{};
  plan.heartbeatDropProbability = 1.5;
  EXPECT_THROW(plan.validate(3), CheckError);
}

TEST(ClusterFaultInjectorTest, KillWindowCoversKillToRejoin) {
  ClusterFaultPlan plan;
  plan.kills.push_back({1, 2.0, 5.0});
  ClusterFaultInjector injector(plan, 3);
  EXPECT_FALSE(injector.killedAt(1, 1.999));
  EXPECT_TRUE(injector.killedAt(1, 2.0));
  EXPECT_TRUE(injector.killedAt(1, 4.999));
  EXPECT_FALSE(injector.killedAt(1, 5.0));  // rejoined
  EXPECT_FALSE(injector.killedAt(0, 3.0));  // other nodes untouched
  ASSERT_TRUE(injector.rejoinTime(1).has_value());
  EXPECT_DOUBLE_EQ(*injector.rejoinTime(1), 5.0);
  EXPECT_FALSE(injector.rejoinTime(0).has_value());
}

TEST(ClusterFaultInjectorTest, PermanentKillNeverRejoins) {
  ClusterFaultPlan plan;
  plan.kills.push_back({0, 1.0, std::nullopt});
  ClusterFaultInjector injector(plan, 2);
  EXPECT_TRUE(injector.killedAt(0, 1.0));
  EXPECT_TRUE(injector.killedAt(0, 1e9));
  EXPECT_FALSE(injector.rejoinTime(0).has_value());
}

TEST(ClusterFaultInjectorTest, FlapAlternatesUpThenDownEachPeriod) {
  ClusterFaultPlan plan;
  plan.flaps.push_back({2, 1.0, 3.0, 1.0, 0.5});
  ClusterFaultInjector injector(plan, 3);
  EXPECT_FALSE(injector.flappedDownAt(2, 0.5));   // before the window
  EXPECT_FALSE(injector.flappedDownAt(2, 1.25));  // up half of period 1
  EXPECT_TRUE(injector.flappedDownAt(2, 1.75));   // down half of period 1
  EXPECT_FALSE(injector.flappedDownAt(2, 2.25));  // up half of period 2
  EXPECT_TRUE(injector.flappedDownAt(2, 2.75));
  EXPECT_FALSE(injector.flappedDownAt(2, 3.0));  // window end is exclusive
  EXPECT_FALSE(injector.flappedDownAt(0, 1.75));
  // Ground truth combines the fault kinds.
  EXPECT_FALSE(injector.nodeUpAt(2, 1.75));
  EXPECT_TRUE(injector.nodeUpAt(2, 2.25));
}

TEST(ClusterFaultInjectorTest, LinkPartitionIsSymmetricAndWindowed) {
  ClusterFaultPlan plan;
  plan.partitions.push_back({kRouterEndpoint, 1, 1.0, 2.0});
  ClusterFaultInjector injector(plan, 3);
  EXPECT_TRUE(injector.linkUpAt(kRouterEndpoint, 1, 0.5));
  EXPECT_FALSE(injector.linkUpAt(kRouterEndpoint, 1, 1.5));
  EXPECT_FALSE(injector.linkUpAt(1, kRouterEndpoint, 1.5));  // symmetric
  EXPECT_TRUE(injector.linkUpAt(kRouterEndpoint, 1, 2.0));   // end exclusive
  EXPECT_TRUE(injector.linkUpAt(kRouterEndpoint, 2, 1.5));   // other links up
}

TEST(ClusterFaultInjectorTest, SlowFactorsMultiplyInsideWindows) {
  ClusterFaultPlan plan;
  plan.slowNodes.push_back({0, 1.0, 3.0, 2.0});
  plan.slowNodes.push_back({0, 2.0, 4.0, 3.0});
  ClusterFaultInjector injector(plan, 2);
  EXPECT_DOUBLE_EQ(injector.slowFactorAt(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(injector.slowFactorAt(0, 1.5), 2.0);
  EXPECT_DOUBLE_EQ(injector.slowFactorAt(0, 2.5), 6.0);  // overlap: 2·3
  EXPECT_DOUBLE_EQ(injector.slowFactorAt(0, 3.5), 3.0);
  EXPECT_DOUBLE_EQ(injector.slowFactorAt(1, 2.5), 1.0);
}

TEST(ClusterFaultInjectorTest, HeartbeatDropsAreSeedDeterministic) {
  ClusterFaultPlan plan;
  plan.seed = 41;
  plan.heartbeatDropProbability = 0.5;
  ClusterFaultInjector a(plan, 3), b(plan, 3);
  bool anyDropped = false;
  for (int i = 0; i < 64; ++i) {
    const bool dropped = a.dropHeartbeat();
    EXPECT_EQ(dropped, b.dropHeartbeat());
    anyDropped = anyDropped || dropped;
  }
  EXPECT_TRUE(anyDropped);

  plan.heartbeatDropProbability = 0.0;
  ClusterFaultInjector never(plan, 3);
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(never.dropHeartbeat());
}

}  // namespace
}  // namespace pushpart
