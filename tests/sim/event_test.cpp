#include "sim/event.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pushpart {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CallbacksMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&] {
    times.push_back(q.now());
    q.scheduleAfter(0.5, [&] { times.push_back(q.now()); });
  });
  q.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueueTest, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule(0.0, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(EventQueueTest, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule(4.0, [] {}), CheckError);
}

TEST(EventQueueTest, PendingCount) {
  EventQueue q;
  EXPECT_EQ(q.pending(), 0u);
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.step();
  EXPECT_EQ(q.pending(), 1u);
}

}  // namespace
}  // namespace pushpart
