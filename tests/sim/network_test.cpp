#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace pushpart {
namespace {

Machine flatMachine() {
  Machine m;
  m.alphaSeconds = 0.0;
  m.sendElementSeconds = 1.0;  // 1 second per element: easy arithmetic
  m.ratio = Ratio{2, 1, 1};
  return m;
}

TEST(NetworkTest, DirectSendTakesHockneyTime) {
  EventQueue events;
  Machine m = flatMachine();
  m.alphaSeconds = 2.0;
  Network net(events, m, Topology::kFullyConnected);
  double delivered = -1;
  net.send({Proc::R, Proc::P, 10}, 0.0, [&](double t) { delivered = t; });
  events.run();
  EXPECT_DOUBLE_EQ(delivered, 12.0);  // α + β·M = 2 + 10
}

TEST(NetworkTest, NicSerializesSends) {
  EventQueue events;
  Network net(events, flatMachine(), Topology::kFullyConnected);
  double d1 = -1, d2 = -1;
  net.send({Proc::R, Proc::P, 5}, 0.0, [&](double t) { d1 = t; });
  net.send({Proc::R, Proc::S, 5}, 0.0, [&](double t) { d2 = t; });
  events.run();
  EXPECT_DOUBLE_EQ(d1, 5.0);
  EXPECT_DOUBLE_EQ(d2, 10.0);  // second send waits for the NIC
}

TEST(NetworkTest, DifferentSendersProceedInParallel) {
  EventQueue events;
  Network net(events, flatMachine(), Topology::kFullyConnected);
  double d1 = -1, d2 = -1;
  net.send({Proc::R, Proc::P, 5}, 0.0, [&](double t) { d1 = t; });
  net.send({Proc::S, Proc::P, 5}, 0.0, [&](double t) { d2 = t; });
  events.run();
  EXPECT_DOUBLE_EQ(d1, 5.0);
  EXPECT_DOUBLE_EQ(d2, 5.0);
}

TEST(NetworkTest, StarRelaysThroughHub) {
  EventQueue events;
  Network net(events, flatMachine(), Topology::kStar, StarConfig{Proc::P});
  double delivered = -1;
  net.send({Proc::R, Proc::S, 4}, 0.0, [&](double t) { delivered = t; });
  events.run();
  EXPECT_DOUBLE_EQ(delivered, 8.0);  // two hops of 4 elements
  EXPECT_EQ(net.stats().messagesSent, 2);
  EXPECT_EQ(net.stats().elementsMoved, 8);
}

TEST(NetworkTest, StarHubTrafficIsDirect) {
  EventQueue events;
  Network net(events, flatMachine(), Topology::kStar, StarConfig{Proc::P});
  double delivered = -1;
  net.send({Proc::R, Proc::P, 4}, 0.0, [&](double t) { delivered = t; });
  events.run();
  EXPECT_DOUBLE_EQ(delivered, 4.0);
  EXPECT_EQ(net.stats().messagesSent, 1);
}

TEST(NetworkTest, HubForwardingContendsWithItsOwnSends) {
  EventQueue events;
  Network net(events, flatMachine(), Topology::kStar, StarConfig{Proc::P});
  double spokeDelivered = -1, hubDelivered = -1;
  // Spoke-to-spoke message arrives at the hub at t=4, but the hub's NIC is
  // busy with its own 10-element send until t=10.
  net.send({Proc::P, Proc::R, 10}, 0.0, [&](double t) { hubDelivered = t; });
  net.send({Proc::R, Proc::S, 4}, 0.0, [&](double t) { spokeDelivered = t; });
  events.run();
  EXPECT_DOUBLE_EQ(hubDelivered, 10.0);
  EXPECT_DOUBLE_EQ(spokeDelivered, 14.0);  // forward waits for the hub NIC
}

TEST(NetworkTest, ZeroElementMessageDeliversInstantly) {
  EventQueue events;
  Network net(events, flatMachine(), Topology::kFullyConnected);
  double delivered = -1;
  net.send({Proc::R, Proc::P, 0}, 3.0, [&](double t) { delivered = t; });
  events.run();
  EXPECT_DOUBLE_EQ(delivered, 3.0);
  EXPECT_EQ(net.stats().messagesSent, 0);
}

TEST(NetworkTest, ReadyAtDefersBooking) {
  EventQueue events;
  Network net(events, flatMachine(), Topology::kFullyConnected);
  double delivered = -1;
  net.send({Proc::R, Proc::P, 5}, 7.0, [&](double t) { delivered = t; });
  events.run();
  EXPECT_DOUBLE_EQ(delivered, 12.0);
}

TEST(NetworkTest, SelfSendRejected) {
  EventQueue events;
  Network net(events, flatMachine(), Topology::kFullyConnected);
  EXPECT_THROW(net.send({Proc::R, Proc::R, 5}, 0.0, [](double) {}),
               CheckError);
}

TEST(NetworkTest, BusySecondsTracked) {
  EventQueue events;
  Network net(events, flatMachine(), Topology::kFullyConnected);
  net.send({Proc::R, Proc::P, 5}, 0.0, [](double) {});
  net.send({Proc::R, Proc::S, 3}, 0.0, [](double) {});
  events.run();
  EXPECT_DOUBLE_EQ(net.stats().nicBusySeconds[procSlot(Proc::R)], 8.0);
  EXPECT_DOUBLE_EQ(net.stats().nicBusySeconds[procSlot(Proc::P)], 0.0);
}

}  // namespace
}  // namespace pushpart
