#include "grid/metrics.hpp"

#include <gtest/gtest.h>

#include "grid/builder.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

TEST(ProcCommTest, UniformGridSendsNothingForAbsentProcs) {
  Partition q(5);
  const auto r = procComm(q, Proc::R);
  EXPECT_EQ(r.elements, 0);
  EXPECT_EQ(r.rowsUsed, 0);
  EXPECT_EQ(r.sendVolume, 0);
  const auto p = procComm(q, Proc::P);
  EXPECT_EQ(p.elements, 25);
  // P owns everything: sends N·N + N·N − N² = N² (it must broadcast pivots to
  // nobody in a 1-proc layout; Eq. 6 counts row+col coverage minus owned).
  EXPECT_EQ(p.sendVolume, 25);
}

TEST(ProcCommTest, SingleCellProcessor) {
  Partition q(5);
  q.set(2, 3, Proc::R);
  const auto r = procComm(q, Proc::R);
  EXPECT_EQ(r.elements, 1);
  EXPECT_EQ(r.rowsUsed, 1);
  EXPECT_EQ(r.colsUsed, 1);
  // d_R numerator: N·1 + N·1 − 1 = 9.
  EXPECT_EQ(r.sendVolume, 9);
}

TEST(ProcCommTest, RectangularBlock) {
  // R owns rows 0..1 x cols 0..2 of a 6x6 grid.
  Partition q(6);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) q.set(i, j, Proc::R);
  const auto r = procComm(q, Proc::R);
  EXPECT_EQ(r.elements, 6);
  EXPECT_EQ(r.rowsUsed, 2);
  EXPECT_EQ(r.colsUsed, 3);
  EXPECT_EQ(r.sendVolume, 6 * 2 + 6 * 3 - 6);
}

TEST(ProcCommTest, AllProcCommIndexedByProc) {
  Partition q(4);
  q.set(0, 0, Proc::R);
  q.set(3, 3, Proc::S);
  const auto all = allProcComm(q);
  EXPECT_EQ(all[procIndex(Proc::R)].elements, 1);
  EXPECT_EQ(all[procIndex(Proc::S)].elements, 1);
  EXPECT_EQ(all[procIndex(Proc::P)].elements, 14);
}

TEST(VoCTest, FreeFunctionMatchesMethod) {
  Rng rng(8);
  const auto q = randomPartition(30, Ratio{4, 2, 1}, rng);
  EXPECT_EQ(volumeOfCommunication(q), q.volumeOfCommunication());
}

TEST(VoCTest, ColumnStripesPartition) {
  // Vertical stripes: P | R | S, each 2 columns of a 6x6 grid.
  Partition q(6);
  for (int i = 0; i < 6; ++i) {
    q.set(i, 2, Proc::R);
    q.set(i, 3, Proc::R);
    q.set(i, 4, Proc::S);
    q.set(i, 5, Proc::S);
  }
  // Every row has 3 owners: Σ_i N(c_i−1) = 6·6·2 = 72.
  // Every column has 1 owner: 0.
  EXPECT_EQ(q.volumeOfCommunication(), 72);
}

TEST(OverlapTest, FullyOwnedGridOverlapsEverything) {
  Partition q(4);  // all P
  EXPECT_EQ(overlapElements(q, Proc::P), 16);
  EXPECT_EQ(overlapFlopSteps(q, Proc::P), 4L * 4 * 4);
  EXPECT_EQ(overlapElements(q, Proc::R), 0);
  EXPECT_EQ(overlapFlopSteps(q, Proc::R), 0);
}

TEST(OverlapTest, StripesGiveNoFullyLocalElements) {
  // Column stripes: no processor owns a full row, so nobody can compute any
  // C element entirely locally.
  Partition q(6);
  for (int i = 0; i < 6; ++i)
    for (int j = 3; j < 6; ++j) q.set(i, j, Proc::R);
  EXPECT_EQ(overlapElements(q, Proc::P), 0);
  EXPECT_EQ(overlapElements(q, Proc::R), 0);
  // But per-k partial overlap exists: for C(i,j) owned by R (j>=3),
  // pivots k in 3..5 have A(i,k) and B(k,j) R-owned.
  // #owned C cells = 18, each with 3 local pivots → 54.
  EXPECT_EQ(overlapFlopSteps(q, Proc::R), 54);
  // P symmetric: 18 cells × 3 local pivots.
  EXPECT_EQ(overlapFlopSteps(q, Proc::P), 54);
}

TEST(OverlapTest, HorizontalBandIsFullyLocalInsideItself) {
  // R owns full rows 0..2 of an 8x8 grid. For C(i,j) with i<3, pivot row i is
  // fully R's, but pivot column j is mixed → not fully local.
  Partition q(8);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 8; ++j) q.set(i, j, Proc::R);
  EXPECT_EQ(overlapElements(q, Proc::R), 0);
  // Per-k: C(i,j), i<3: pivots k<3 have A(i,k) (row i all R) and B(k,j)
  // (row k all R) → 3 local pivots each. 24 cells × 3 = 72.
  EXPECT_EQ(overlapFlopSteps(q, Proc::R), 72);
}

TEST(OverlapTest, SquareCornerOverlapCounts) {
  // S owns the 2x2 bottom-right corner of a 4x4 grid; P the rest.
  Partition q(4);
  for (int i = 2; i < 4; ++i)
    for (int j = 2; j < 4; ++j) q.set(i, j, Proc::S);
  // S: C(i,j) in corner; local pivots k ∈ {2,3} when A(i,k),B(k,j) S-owned →
  // A(i,k): k∈{2,3} (row i cols 2,3 are S); B(k,j): k∈{2,3}. So 2 each → 4
  // cells × 2 = 8.
  EXPECT_EQ(overlapFlopSteps(q, Proc::S), 8);
  // P: C(i,j) with i<2 or j<2. For i<2,j<2: pivots k∈{0,1} fully P plus
  // k∈{2,3}: A(i,k) P? row i<2, col k≥2 is P → yes; B(k,j): row k≥2, col j<2
  // is P → yes. So 4 local pivots. For i<2,j≥2: A(i,k) always P; B(k,j) P only
  // k<2 → 2. Symmetric for i≥2,j<2.
  // Total: 4 cells×4 + 4×2 + 4×2 = 32.
  EXPECT_EQ(overlapFlopSteps(q, Proc::P), 32);
}

TEST(OverlapTest, FlopStepsNeverExceedCubeShare) {
  Rng rng(5);
  const auto q = randomPartition(24, Ratio{3, 1, 1}, rng);
  for (Proc x : kAllProcs) {
    const auto steps = overlapFlopSteps(q, x);
    EXPECT_GE(steps, 0);
    EXPECT_LE(steps, q.count(x) * q.n());
  }
}

}  // namespace
}  // namespace pushpart
