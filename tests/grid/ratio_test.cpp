#include "grid/ratio.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pushpart {
namespace {

TEST(RatioTest, ParseBasic) {
  const auto r = Ratio::parse("5:2:1");
  EXPECT_DOUBLE_EQ(r.p, 5);
  EXPECT_DOUBLE_EQ(r.r, 2);
  EXPECT_DOUBLE_EQ(r.s, 1);
  EXPECT_DOUBLE_EQ(r.total(), 8);
}

TEST(RatioTest, ParseFractional) {
  const auto r = Ratio::parse("2.5:1.5:1");
  EXPECT_DOUBLE_EQ(r.p, 2.5);
  EXPECT_DOUBLE_EQ(r.r, 1.5);
}

TEST(RatioTest, ParseErrors) {
  EXPECT_THROW(Ratio::parse(""), std::invalid_argument);
  EXPECT_THROW(Ratio::parse("5:2"), std::invalid_argument);
  EXPECT_THROW(Ratio::parse("5;2;1"), std::invalid_argument);
  EXPECT_THROW(Ratio::parse("a:b:c"), std::invalid_argument);
  EXPECT_THROW(Ratio::parse("5:2:1:1"), std::invalid_argument);
  EXPECT_THROW(Ratio::parse("5:2:0"), std::invalid_argument);
  EXPECT_THROW(Ratio::parse("-5:2:1"), std::invalid_argument);
}

TEST(RatioTest, RoundTripString) {
  const auto r = Ratio::parse("10:3:1");
  EXPECT_EQ(r.str(), "10:3:1");
  EXPECT_EQ(Ratio::parse(r.str()), r);
}

TEST(RatioTest, SpeedAndFraction) {
  const Ratio r{5, 2, 1};
  EXPECT_DOUBLE_EQ(r.speed(Proc::P), 5);
  EXPECT_DOUBLE_EQ(r.speed(Proc::R), 2);
  EXPECT_DOUBLE_EQ(r.speed(Proc::S), 1);
  EXPECT_DOUBLE_EQ(r.fraction(Proc::P), 5.0 / 8.0);
  EXPECT_DOUBLE_EQ(r.fraction(Proc::S), 1.0 / 8.0);
}

TEST(RatioTest, ElementCountsSumToN2) {
  for (const auto& r : paperRatios()) {
    for (int n : {10, 37, 100, 1000}) {
      const auto c = r.elementCounts(n);
      EXPECT_EQ(c[0] + c[1] + c[2], static_cast<std::int64_t>(n) * n)
          << "ratio " << r.str() << " n=" << n;
      // P gets the largest share (ratio assumption p >= r, s).
      EXPECT_GE(c[procIndex(Proc::P)], c[procIndex(Proc::R)]);
      EXPECT_GE(c[procIndex(Proc::P)], c[procIndex(Proc::S)]);
    }
  }
}

TEST(RatioTest, ElementCountsMatchFractions) {
  const Ratio r{2, 1, 1};
  const auto c = r.elementCounts(100);
  EXPECT_EQ(c[procIndex(Proc::P)], 5000);
  EXPECT_EQ(c[procIndex(Proc::R)], 2500);
  EXPECT_EQ(c[procIndex(Proc::S)], 2500);
}

TEST(RatioTest, NormalizedDividesBySlowest) {
  const Ratio r{10, 4, 2};
  const auto n = r.normalized();
  EXPECT_DOUBLE_EQ(n.p, 5);
  EXPECT_DOUBLE_EQ(n.r, 2);
  EXPECT_DOUBLE_EQ(n.s, 1);
}

TEST(RatioTest, ValidRequiresPFastest) {
  EXPECT_TRUE((Ratio{5, 2, 1}).valid());
  EXPECT_TRUE((Ratio{2, 2, 1}).valid());
  EXPECT_TRUE((Ratio{1, 1, 1}).valid());
  EXPECT_FALSE((Ratio{1, 2, 1}).valid());
  EXPECT_FALSE((Ratio{0, 1, 1}).valid());
}

TEST(RatioTest, PaperRatiosAreTheElevenStudied) {
  const auto& rs = paperRatios();
  EXPECT_EQ(rs.size(), 11u);
  EXPECT_EQ(rs[0].str(), "2:1:1");
  EXPECT_EQ(rs[4].str(), "10:1:1");
  EXPECT_EQ(rs[10].str(), "5:4:1");
  for (const auto& r : rs) EXPECT_TRUE(r.valid());
}

}  // namespace
}  // namespace pushpart
