#include "grid/builder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

namespace pushpart {
namespace {

TEST(FromAsciiTest, ParsesSmallGrid) {
  const auto q = fromAscii(
      "PPR\n"
      "PSR\n"
      "PPR\n");
  EXPECT_EQ(q.n(), 3);
  EXPECT_EQ(q.at(0, 0), Proc::P);
  EXPECT_EQ(q.at(0, 2), Proc::R);
  EXPECT_EQ(q.at(1, 1), Proc::S);
  EXPECT_EQ(q.count(Proc::R), 3);
  EXPECT_EQ(q.count(Proc::S), 1);
  EXPECT_EQ(q.count(Proc::P), 5);
}

TEST(FromAsciiTest, TrimsIndentationAndBlankLines) {
  const auto q = fromAscii(R"(
      PR
      SP
  )");
  EXPECT_EQ(q.n(), 2);
  EXPECT_EQ(q.at(1, 0), Proc::S);
}

TEST(FromAsciiTest, RejectsNonSquare) {
  EXPECT_THROW(fromAscii("PP\nPPP\n"), std::invalid_argument);
  EXPECT_THROW(fromAscii("PPP\nPPP\n"), std::invalid_argument);
}

TEST(FromAsciiTest, RejectsBadCharacters) {
  EXPECT_THROW(fromAscii("PX\nPP\n"), std::invalid_argument);
}

TEST(FromAsciiTest, RejectsEmpty) {
  EXPECT_THROW(fromAscii(""), std::invalid_argument);
  EXPECT_THROW(fromAscii("\n  \n"), std::invalid_argument);
}

TEST(ToAsciiTest, RoundTrips) {
  const std::string art = "PPR\nPSR\nPPR";
  EXPECT_EQ(toAscii(fromAscii(art)), art);
}

using RandomParam = std::tuple<int, const char*, std::uint64_t>;

class RandomPartitionTest : public ::testing::TestWithParam<RandomParam> {};

TEST_P(RandomPartitionTest, ScatteredRespectsRatioCounts) {
  const auto [n, ratioStr, seed] = GetParam();
  const auto ratio = Ratio::parse(ratioStr);
  Rng rng(seed);
  const auto q = randomPartition(n, ratio, rng);
  const auto want = ratio.elementCounts(n);
  for (Proc x : kAllProcs)
    EXPECT_EQ(q.count(x), want[static_cast<std::size_t>(procIndex(x))])
        << procName(x);
  q.validateCounters();
}

TEST_P(RandomPartitionTest, ClusteredRespectsRatioCounts) {
  const auto [n, ratioStr, seed] = GetParam();
  const auto ratio = Ratio::parse(ratioStr);
  Rng rng(seed);
  const auto q = randomClusteredPartition(n, ratio, rng);
  const auto want = ratio.elementCounts(n);
  for (Proc x : kAllProcs)
    EXPECT_EQ(q.count(x), want[static_cast<std::size_t>(procIndex(x))])
        << procName(x);
  q.validateCounters();
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRatios, RandomPartitionTest,
    ::testing::Combine(::testing::Values(8, 25, 60),
                       ::testing::Values("2:1:1", "5:2:1", "10:1:1", "5:4:1"),
                       ::testing::Values(1u, 99u)));

TEST(RandomPartitionTest, DeterministicForSeed) {
  const Ratio ratio{3, 2, 1};
  Rng a(5), b(5);
  EXPECT_EQ(randomPartition(20, ratio, a), randomPartition(20, ratio, b));
}

TEST(RandomPartitionTest, DifferentSeedsDiffer) {
  const Ratio ratio{3, 2, 1};
  Rng a(5), b(6);
  EXPECT_FALSE(randomPartition(20, ratio, a) == randomPartition(20, ratio, b));
}

TEST(RandomPartitionTest, ScatteredStartIsFragmented) {
  // The whole point of the random q0 is to avoid preconceived shapes: with a
  // scattered start the slower processors should touch most rows.
  Rng rng(3);
  const auto q = randomPartition(50, Ratio{2, 1, 1}, rng);
  EXPECT_GT(q.rowsUsed(Proc::R), 40);
  EXPECT_GT(q.colsUsed(Proc::R), 40);
}

}  // namespace
}  // namespace pushpart
