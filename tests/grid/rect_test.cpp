#include "grid/rect.hpp"

#include <gtest/gtest.h>

namespace pushpart {
namespace {

TEST(RectTest, EmptyRect) {
  const Rect e = Rect::empty();
  EXPECT_TRUE(e.isEmpty());
  EXPECT_EQ(e.area(), 0);
  EXPECT_EQ(e.height(), 0);
  EXPECT_EQ(e.width(), 0);
}

TEST(RectTest, Dimensions) {
  const Rect r{1, 4, 2, 7};
  EXPECT_FALSE(r.isEmpty());
  EXPECT_EQ(r.height(), 3);
  EXPECT_EQ(r.width(), 5);
  EXPECT_EQ(r.area(), 15);
}

TEST(RectTest, ContainsPoint) {
  const Rect r{1, 4, 2, 7};
  EXPECT_TRUE(r.contains(1, 2));
  EXPECT_TRUE(r.contains(3, 6));
  EXPECT_FALSE(r.contains(4, 2));  // rowEnd exclusive
  EXPECT_FALSE(r.contains(1, 7));  // colEnd exclusive
  EXPECT_FALSE(r.contains(0, 2));
}

TEST(RectTest, ContainsRect) {
  const Rect outer{0, 10, 0, 10};
  EXPECT_TRUE(outer.contains(Rect{2, 5, 3, 7}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect{2, 11, 3, 7}));
  // Empty rect is contained in everything, including another empty rect.
  EXPECT_TRUE(outer.contains(Rect::empty()));
  EXPECT_TRUE(Rect::empty().contains(Rect::empty()));
  EXPECT_FALSE(Rect::empty().contains(outer));
}

TEST(RectTest, Overlaps) {
  const Rect a{0, 5, 0, 5};
  EXPECT_TRUE(a.overlaps(Rect{4, 8, 4, 8}));     // corner overlap
  EXPECT_FALSE(a.overlaps(Rect{5, 8, 0, 5}));    // touching edges don't overlap
  EXPECT_FALSE(a.overlaps(Rect{0, 5, 5, 8}));
  EXPECT_FALSE(a.overlaps(Rect::empty()));
  EXPECT_TRUE(a.overlaps(a));
}

TEST(RectTest, Intersect) {
  const Rect a{0, 5, 0, 5};
  const Rect b{3, 8, 2, 4};
  EXPECT_EQ(a.intersect(b), (Rect{3, 5, 2, 4}));
  EXPECT_TRUE(a.intersect(Rect{6, 8, 6, 8}).isEmpty());
  EXPECT_EQ(a.intersect(a), a);
}

TEST(RectTest, Equality) {
  EXPECT_EQ((Rect{1, 2, 3, 4}), (Rect{1, 2, 3, 4}));
  EXPECT_NE((Rect{1, 2, 3, 4}), (Rect{1, 2, 3, 5}));
}

}  // namespace
}  // namespace pushpart
