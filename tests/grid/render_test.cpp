#include "grid/render.hpp"

#include <gtest/gtest.h>

#include "grid/builder.hpp"
#include "support/check.hpp"

namespace pushpart {
namespace {

TEST(RenderTest, ExactWhenSmall) {
  const auto q = fromAscii(
      "PR\n"
      "SP\n");
  EXPECT_EQ(renderAscii(q, 10), ".r\nS.\n");
}

TEST(RenderTest, CoarseMajorityVote) {
  // 4x4 grid, top-left 2x2 block all R, rest P; render at 2x2.
  Partition q(4);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) q.set(i, j, Proc::R);
  EXPECT_EQ(renderAscii(q, 2), "r.\n..\n");
}

TEST(RenderTest, OutputDimensions) {
  Partition q(100);
  const auto art = renderAscii(q, 10);
  // 10 rows of 10 chars + newline each.
  EXPECT_EQ(art.size(), 110u);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 10);
}

TEST(RenderTest, RejectsNonPositiveBudget) {
  Partition q(4);
  EXPECT_THROW(renderAscii(q, 0), CheckError);
}

TEST(SummaryLineTest, MentionsAllProcessors) {
  Partition q(6);
  q.set(0, 0, Proc::R);
  const auto line = summaryLine(q);
  EXPECT_NE(line.find("n=6"), std::string::npos);
  EXPECT_NE(line.find("VoC="), std::string::npos);
  EXPECT_NE(line.find("R:1"), std::string::npos);
  EXPECT_NE(line.find("P:35"), std::string::npos);
}

}  // namespace
}  // namespace pushpart
