#include "grid/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "grid/builder.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

TEST(SerializeTest, StreamRoundTrip) {
  Rng rng(4);
  const auto q = randomPartition(12, Ratio{3, 2, 1}, rng);
  std::stringstream ss;
  savePartition(q, ss);
  const auto back = loadPartition(ss);
  EXPECT_EQ(q, back);
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pushpart_serialize.txt";
  Rng rng(4);
  const auto q = randomPartition(9, Ratio{2, 1, 1}, rng);
  savePartition(q, path);
  const auto back = loadPartition(path);
  EXPECT_EQ(q, back);
  std::remove(path.c_str());
}

TEST(SerializeTest, BadMagicThrows) {
  std::stringstream ss("not-a-partition\nn 3\nPPP\nPPP\nPPP\n");
  EXPECT_THROW(loadPartition(ss), std::runtime_error);
}

TEST(SerializeTest, BadSizeThrows) {
  std::stringstream ss("pushpart-partition v1\nn -2\n");
  EXPECT_THROW(loadPartition(ss), std::runtime_error);
}

TEST(SerializeTest, TruncatedGridThrows) {
  std::stringstream ss("pushpart-partition v1\nn 3\nPPP\nPPP\n");
  EXPECT_THROW(loadPartition(ss), std::runtime_error);
}

std::string loadErrorMessage(const std::string& text) {
  std::stringstream ss(text);
  try {
    loadPartition(ss);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";  // no exception — the caller's EXPECT on the message will fail
}

TEST(SerializeTest, InvalidCellCharacterNamesThePosition) {
  const std::string msg =
      loadErrorMessage("pushpart-partition v1\nn 2\nPR\nPX\n");
  EXPECT_NE(msg.find("invalid cell 'X'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("row 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 1"), std::string::npos) << msg;
}

TEST(SerializeTest, NonPositiveSizeRejected) {
  EXPECT_NE(loadErrorMessage("pushpart-partition v1\nn 0\n")
                .find("must be positive"),
            std::string::npos);
  EXPECT_NE(loadErrorMessage("pushpart-partition v1\nn -3\n")
                .find("must be positive"),
            std::string::npos);
}

TEST(SerializeTest, AbsurdlyLargeSizeRejectedBeforeAllocation) {
  // A hostile header must not drive an O(n²) allocation.
  EXPECT_NE(loadErrorMessage("pushpart-partition v1\nn 99999999\nPPP\n")
                .find("exceeds the supported maximum"),
            std::string::npos);
}

TEST(SerializeTest, NonNumericOrJunkSizeLineRejected) {
  EXPECT_NE(loadErrorMessage("pushpart-partition v1\nn three\nPPP\n")
                .find("bad size line"),
            std::string::npos);
  EXPECT_NE(loadErrorMessage("pushpart-partition v1\nm 3\nPPP\n")
                .find("bad size line"),
            std::string::npos);
  EXPECT_NE(loadErrorMessage("pushpart-partition v1\nn 3 junk\nPPP\n")
                .find("trailing junk"),
            std::string::npos);
}

TEST(SerializeTest, WrongRowLengthNamesTheRow) {
  const std::string msg =
      loadErrorMessage("pushpart-partition v1\nn 3\nPPP\nPP\nPPP\n");
  EXPECT_NE(msg.find("row 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("has 2 cells, expected 3"), std::string::npos) << msg;
}

TEST(SerializeTest, TruncatedGridNamesTheShortfall) {
  const std::string msg =
      loadErrorMessage("pushpart-partition v1\nn 3\nPPP\nPPP\n");
  EXPECT_NE(msg.find("got 2 of 3 rows"), std::string::npos) << msg;
}

TEST(SerializeTest, CrlfAndTrailingBlanksAccepted) {
  std::stringstream ss("pushpart-partition v1\nn 2\nPR\r\nPP \n");
  const auto q = loadPartition(ss);
  EXPECT_EQ(q.n(), 2);
  EXPECT_EQ(q.at(0, 1), Proc::R);
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(loadPartition(std::string("/no/such/file.txt")),
               std::runtime_error);
}

}  // namespace
}  // namespace pushpart
