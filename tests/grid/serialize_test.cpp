#include "grid/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "grid/builder.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

TEST(SerializeTest, StreamRoundTrip) {
  Rng rng(4);
  const auto q = randomPartition(12, Ratio{3, 2, 1}, rng);
  std::stringstream ss;
  savePartition(q, ss);
  const auto back = loadPartition(ss);
  EXPECT_EQ(q, back);
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pushpart_serialize.txt";
  Rng rng(4);
  const auto q = randomPartition(9, Ratio{2, 1, 1}, rng);
  savePartition(q, path);
  const auto back = loadPartition(path);
  EXPECT_EQ(q, back);
  std::remove(path.c_str());
}

TEST(SerializeTest, BadMagicThrows) {
  std::stringstream ss("not-a-partition\nn 3\nPPP\nPPP\nPPP\n");
  EXPECT_THROW(loadPartition(ss), std::runtime_error);
}

TEST(SerializeTest, BadSizeThrows) {
  std::stringstream ss("pushpart-partition v1\nn -2\n");
  EXPECT_THROW(loadPartition(ss), std::runtime_error);
}

TEST(SerializeTest, TruncatedGridThrows) {
  std::stringstream ss("pushpart-partition v1\nn 3\nPPP\nPPP\n");
  EXPECT_THROW(loadPartition(ss), std::runtime_error);
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(loadPartition(std::string("/no/such/file.txt")),
               std::runtime_error);
}

}  // namespace
}  // namespace pushpart
