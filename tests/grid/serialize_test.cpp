#include "grid/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "grid/builder.hpp"
#include "support/rng.hpp"
#include "verify/generators.hpp"
#include "verify/invariants.hpp"

namespace pushpart {
namespace {

TEST(SerializeTest, StreamRoundTrip) {
  Rng rng(4);
  const auto q = randomPartition(12, Ratio{3, 2, 1}, rng);
  std::stringstream ss;
  savePartition(q, ss);
  const auto back = loadPartition(ss);
  EXPECT_EQ(q, back);
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pushpart_serialize.txt";
  Rng rng(4);
  const auto q = randomPartition(9, Ratio{2, 1, 1}, rng);
  savePartition(q, path);
  const auto back = loadPartition(path);
  EXPECT_EQ(q, back);
  std::remove(path.c_str());
}

TEST(SerializeTest, BadMagicThrows) {
  std::stringstream ss("not-a-partition\nn 3\nPPP\nPPP\nPPP\n");
  EXPECT_THROW(loadPartition(ss), std::runtime_error);
}

TEST(SerializeTest, BadSizeThrows) {
  std::stringstream ss("pushpart-partition v1\nn -2\n");
  EXPECT_THROW(loadPartition(ss), std::runtime_error);
}

TEST(SerializeTest, TruncatedGridThrows) {
  std::stringstream ss("pushpart-partition v1\nn 3\nPPP\nPPP\n");
  EXPECT_THROW(loadPartition(ss), std::runtime_error);
}

std::string loadErrorMessage(const std::string& text) {
  std::stringstream ss(text);
  try {
    loadPartition(ss);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";  // no exception — the caller's EXPECT on the message will fail
}

TEST(SerializeTest, InvalidCellCharacterNamesThePosition) {
  const std::string msg =
      loadErrorMessage("pushpart-partition v1\nn 2\nPR\nPX\n");
  EXPECT_NE(msg.find("invalid cell 'X'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("row 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 1"), std::string::npos) << msg;
}

TEST(SerializeTest, NonPositiveSizeRejected) {
  EXPECT_NE(loadErrorMessage("pushpart-partition v1\nn 0\n")
                .find("must be positive"),
            std::string::npos);
  EXPECT_NE(loadErrorMessage("pushpart-partition v1\nn -3\n")
                .find("must be positive"),
            std::string::npos);
}

TEST(SerializeTest, AbsurdlyLargeSizeRejectedBeforeAllocation) {
  // A hostile header must not drive an O(n²) allocation.
  EXPECT_NE(loadErrorMessage("pushpart-partition v1\nn 99999999\nPPP\n")
                .find("exceeds the supported maximum"),
            std::string::npos);
}

TEST(SerializeTest, NonNumericOrJunkSizeLineRejected) {
  EXPECT_NE(loadErrorMessage("pushpart-partition v1\nn three\nPPP\n")
                .find("bad size line"),
            std::string::npos);
  EXPECT_NE(loadErrorMessage("pushpart-partition v1\nm 3\nPPP\n")
                .find("bad size line"),
            std::string::npos);
  EXPECT_NE(loadErrorMessage("pushpart-partition v1\nn 3 junk\nPPP\n")
                .find("trailing junk"),
            std::string::npos);
}

TEST(SerializeTest, WrongRowLengthNamesTheRow) {
  const std::string msg =
      loadErrorMessage("pushpart-partition v1\nn 3\nPPP\nPP\nPPP\n");
  EXPECT_NE(msg.find("row 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("has 2 cells, expected 3"), std::string::npos) << msg;
}

TEST(SerializeTest, TruncatedGridNamesTheShortfall) {
  const std::string msg =
      loadErrorMessage("pushpart-partition v1\nn 3\nPPP\nPPP\n");
  EXPECT_NE(msg.find("got 2 of 3 rows"), std::string::npos) << msg;
}

TEST(SerializeTest, CrlfAndTrailingBlanksAccepted) {
  std::stringstream ss("pushpart-partition v1\nn 2\nPR\r\nPP \n");
  const auto q = loadPartition(ss);
  EXPECT_EQ(q.n(), 2);
  EXPECT_EQ(q.at(0, 1), Proc::R);
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(loadPartition(std::string("/no/such/file.txt")),
               std::runtime_error);
}

// Property: save→load→save is byte-identical for arbitrary generated
// partitions — every style the harness produces, across sizes and ratios.
TEST(SerializePropertyTest, RoundTripIsByteIdenticalForGeneratedPartitions) {
  Rng rng(2024);
  for (int i = 0; i < 60; ++i) {
    const Ratio ratio = genRatio(rng);
    const int n = genSmallN(rng, 3, 48);
    const GenStyle style = genStyle(rng);
    const Partition q = genPartition(style, n, ratio, rng);

    std::stringstream first;
    savePartition(q, first);
    const Partition back = loadPartition(first);
    EXPECT_EQ(q, back) << "n=" << n << " style=" << genStyleName(style);
    std::stringstream second;
    savePartition(back, second);
    EXPECT_EQ(first.str(), second.str())
        << "n=" << n << " style=" << genStyleName(style);

    // The shared checker agrees (it is what the verify suite runs).
    const CheckReport report = checkSerializeRoundTrip(q);
    EXPECT_TRUE(report.ok()) << report.str();
  }
}

// Property: corrupting any single cell character to junk is rejected, and
// the error names the exact (row, column) of the corruption.
TEST(SerializePropertyTest, SingleCellCorruptionIsRejectedWithPosition) {
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const int n = genSmallN(rng, 3, 16);
    const Partition q = randomPartition(n, Ratio{3, 2, 1}, rng);
    std::stringstream ss;
    savePartition(q, ss);
    std::string text = ss.str();

    const int row = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int col = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    // Grid rows start after the two header lines; each row is n cells + '\n'.
    const std::size_t header = text.find('\n', text.find('\n') + 1) + 1;
    text[header + static_cast<std::size_t>(row) *
                      static_cast<std::size_t>(n + 1) +
         static_cast<std::size_t>(col)] = '?';

    const std::string msg = loadErrorMessage(text);
    EXPECT_NE(msg.find("invalid cell '?'"), std::string::npos) << text;
    EXPECT_NE(msg.find("row " + std::to_string(row)), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("column " + std::to_string(col)), std::string::npos)
        << msg;
  }
}

// Property: truncating the serialized text anywhere strictly inside the
// grid body is always rejected (never silently accepted as a smaller grid).
TEST(SerializePropertyTest, AnyTruncationInsideTheGridIsRejected) {
  Rng rng(7);
  const Partition q = randomPartition(8, Ratio{2, 1, 1}, rng);
  std::stringstream ss;
  savePartition(q, ss);
  const std::string text = ss.str();
  const std::size_t header = text.find('\n', text.find('\n') + 1) + 1;
  for (std::size_t cut = header; cut < text.size() - 1; cut += 7) {
    std::stringstream truncated(text.substr(0, cut));
    EXPECT_THROW(loadPartition(truncated), std::runtime_error)
        << "cut at " << cut;
  }
}

}  // namespace
}  // namespace pushpart
