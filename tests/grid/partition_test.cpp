#include "grid/partition.hpp"

#include <gtest/gtest.h>

#include "grid/builder.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

TEST(PartitionTest, FreshGridIsAllFillProcessor) {
  Partition q(4);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) EXPECT_EQ(q.at(i, j), Proc::P);
  EXPECT_EQ(q.count(Proc::P), 16);
  EXPECT_EQ(q.count(Proc::R), 0);
  EXPECT_EQ(q.count(Proc::S), 0);
}

TEST(PartitionTest, UniformGridHasZeroVoC) {
  Partition q(8);
  EXPECT_EQ(q.volumeOfCommunication(), 0);
}

TEST(PartitionTest, SetUpdatesCountsIncrementally) {
  Partition q(4);
  q.set(1, 2, Proc::R);
  EXPECT_EQ(q.at(1, 2), Proc::R);
  EXPECT_EQ(q.count(Proc::R), 1);
  EXPECT_EQ(q.count(Proc::P), 15);
  EXPECT_EQ(q.rowCount(Proc::R, 1), 1);
  EXPECT_EQ(q.colCount(Proc::R, 2), 1);
  EXPECT_EQ(q.rowsUsed(Proc::R), 1);
  EXPECT_EQ(q.colsUsed(Proc::R), 1);
  EXPECT_EQ(q.procsInRow(1), 2);
  EXPECT_EQ(q.procsInCol(2), 2);
  EXPECT_EQ(q.procsInRow(0), 1);
}

TEST(PartitionTest, SetSameOwnerIsNoOp) {
  Partition q(4);
  q.set(0, 0, Proc::P);
  EXPECT_EQ(q.count(Proc::P), 16);
  q.validateCounters();
}

TEST(PartitionTest, VoCSingleForeignCell) {
  // One R cell in a 4x4 P grid: row 1 and col 2 each have 2 owners.
  // VoC = N(2-1) + N(2-1) = 4 + 4 = 8.
  Partition q(4);
  q.set(1, 2, Proc::R);
  EXPECT_EQ(q.volumeOfCommunication(), 8);
}

TEST(PartitionTest, VoCMatchesPaperFormulaOnRandomGrids) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const auto q = randomPartition(16, Ratio{3, 2, 1}, rng);
    // Recompute Eq. 1 from scratch.
    std::int64_t voc = 0;
    for (int i = 0; i < q.n(); ++i) voc += q.n() * (q.procsInRow(i) - 1);
    for (int j = 0; j < q.n(); ++j) voc += q.n() * (q.procsInCol(j) - 1);
    EXPECT_EQ(q.volumeOfCommunication(), voc);
  }
}

TEST(PartitionTest, SwapCellsExchangesOwners) {
  Partition q(4);
  q.set(0, 0, Proc::R);
  q.set(3, 3, Proc::S);
  q.swapCells(0, 0, 3, 3);
  EXPECT_EQ(q.at(0, 0), Proc::S);
  EXPECT_EQ(q.at(3, 3), Proc::R);
  q.validateCounters();
}

TEST(PartitionTest, EnclosingRectTracksElements) {
  Partition q(8);
  EXPECT_TRUE(q.enclosingRect(Proc::R).isEmpty());
  q.set(2, 3, Proc::R);
  q.set(5, 6, Proc::R);
  const Rect r = q.enclosingRect(Proc::R);
  EXPECT_EQ(r, (Rect{2, 6, 3, 7}));
  // P's rectangle is still the whole grid.
  EXPECT_EQ(q.enclosingRect(Proc::P), (Rect{0, 8, 0, 8}));
}

TEST(PartitionTest, EnclosingRectShrinksWhenElementRemoved) {
  Partition q(8);
  q.set(2, 3, Proc::R);
  q.set(5, 6, Proc::R);
  q.set(5, 6, Proc::P);  // take it back
  EXPECT_EQ(q.enclosingRect(Proc::R), (Rect{2, 3, 3, 4}));
}

TEST(PartitionTest, HashDiffersForDifferentGrids) {
  Partition a(6), b(6);
  b.set(0, 0, Proc::R);
  EXPECT_NE(a.hash(), b.hash());
  Partition c(6);
  EXPECT_EQ(a.hash(), c.hash());
}

TEST(PartitionTest, EqualityComparesCells) {
  Partition a(5), b(5);
  EXPECT_EQ(a, b);
  b.set(2, 2, Proc::S);
  EXPECT_FALSE(a == b);
}

TEST(PartitionTest, OutOfRangeSetThrows) {
  Partition q(4);
  EXPECT_THROW(q.set(-1, 0, Proc::R), CheckError);
  EXPECT_THROW(q.set(0, 4, Proc::R), CheckError);
  EXPECT_THROW(q.set(4, 0, Proc::R), CheckError);
}

TEST(PartitionTest, NonPositiveSizeThrows) {
  EXPECT_THROW(Partition(0), CheckError);
  EXPECT_THROW(Partition(-3), CheckError);
}

TEST(PartitionTest, ValidateCountersPassesAfterRandomMutation) {
  Rng rng(77);
  Partition q(20);
  for (int step = 0; step < 5000; ++step) {
    const int i = static_cast<int>(rng.below(20));
    const int j = static_cast<int>(rng.below(20));
    const Proc p = procFromIndex(static_cast<int>(rng.below(3)));
    q.set(i, j, p);
  }
  q.validateCounters();
}

// Parameterised sweep: VoC and rectangles stay consistent across sizes.
class PartitionSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSizeTest, CheckerboardCountsAreExact) {
  const int n = GetParam();
  Partition q(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if ((i + j) % 2 == 0) q.set(i, j, Proc::R);
  q.validateCounters();
  // Every row and column holds both P and R: c_i = c_j = 2 everywhere.
  EXPECT_EQ(q.volumeOfCommunication(),
            2LL * n * n);  // N·(2N - N)·2 halves = 2N²
  EXPECT_EQ(q.count(Proc::R) + q.count(Proc::P), static_cast<std::int64_t>(n) * n);
  EXPECT_EQ(q.enclosingRect(Proc::R), (Rect{0, n, 0, n}));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PartitionSizeTest,
                         ::testing::Values(2, 3, 4, 7, 16, 33, 64));

}  // namespace
}  // namespace pushpart
