#include "dfa/dfa.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "grid/builder.hpp"
#include "support/check.hpp"

namespace pushpart {
namespace {

TEST(DfaTest, EmptyScheduleRejected) {
  Partition q(8);
  EXPECT_THROW(runDfa(q, Schedule{}, {}), CheckError);
}

TEST(DfaTest, CondensesRandomStart) {
  Rng rng(5);
  const Ratio ratio{2, 1, 1};
  auto q0 = randomPartition(24, ratio, rng);
  const auto vocStart = q0.volumeOfCommunication();
  const auto result = runDfa(std::move(q0), Schedule::full(), {});
  EXPECT_EQ(result.vocStart, vocStart);
  EXPECT_LE(result.vocEnd, result.vocStart);
  EXPECT_GT(result.pushesApplied, 0);
  // Full schedule + beautify: no strictly-improving push can remain.
  const PushOptions strictOnly{.allowEqualVoC = false};
  for (Proc active : kSlowProcs)
    EXPECT_FALSE(
        pushAvailable(result.final, active, kAllDirections, strictOnly));
  result.final.validateCounters();
}

TEST(DfaTest, PreservesElementCounts) {
  Rng rng(6);
  const Ratio ratio{5, 2, 1};
  const auto want = ratio.elementCounts(20);
  const auto result =
      runDfa(randomPartition(20, ratio, rng), Schedule::full(), {});
  for (Proc x : kAllProcs) EXPECT_EQ(result.final.count(x), want[procSlot(x)]);
}

TEST(DfaTest, AlreadyCondensedInputStopsImmediately) {
  auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "PPSS\n"
      "PPSS\n");
  const auto result = runDfa(q, Schedule::full(), {});
  EXPECT_EQ(result.stop, DfaStop::kCondensed);
  EXPECT_EQ(result.pushesApplied, 0);
  EXPECT_EQ(result.final, q);
}

TEST(DfaTest, TraceCapturesStartAndEnd) {
  Rng rng(7);
  DfaOptions opts;
  opts.traceEvery = 5;
  opts.traceCells = 10;
  const auto result =
      runDfa(randomPartition(16, Ratio{2, 1, 1}, rng), Schedule::full(), opts);
  ASSERT_GE(result.trace.size(), 2u);
  EXPECT_EQ(result.trace.front().pushesApplied, 0);
  EXPECT_EQ(result.trace.back().pushesApplied, result.pushesApplied);
  // VoC along the trace never increases (beautify may only lower the last).
  for (std::size_t i = 1; i < result.trace.size(); ++i)
    EXPECT_LE(result.trace[i].voc, result.trace[i - 1].voc);
  // Snapshots render at the requested granularity.
  EXPECT_EQ(result.trace.front().art.size(), 11u * 10u);
}

TEST(DfaTest, NoTraceByDefault) {
  Rng rng(8);
  const auto result =
      runDfa(randomPartition(12, Ratio{2, 1, 1}, rng), Schedule::full(), {});
  EXPECT_TRUE(result.trace.empty());
}

TEST(DfaTest, PushBudgetStopsEarly) {
  Rng rng(9);
  DfaOptions opts;
  opts.maxPushes = 3;
  opts.beautifyResult = false;
  const auto result =
      runDfa(randomPartition(20, Ratio{2, 1, 1}, rng), Schedule::full(), opts);
  EXPECT_EQ(result.stop, DfaStop::kPushBudget);
  EXPECT_EQ(result.pushesApplied, 3);
}

TEST(DfaTest, BeautifyOffLeavesScheduleResult) {
  // With a single-direction schedule and beautify off, improving pushes in
  // other directions may remain.
  Rng rng(10);
  DfaOptions opts;
  opts.beautifyResult = false;
  Schedule s;
  s.slots = {{Proc::R, Direction::Down}};
  const auto result =
      runDfa(randomPartition(16, Ratio{2, 1, 1}, rng), s, opts);
  EXPECT_EQ(result.beautify.pushesApplied, 0);
  EXPECT_LE(result.vocEnd, result.vocStart);
}

using DfaParam = std::tuple<int, const char*, std::uint64_t>;

class DfaConvergenceTest : public ::testing::TestWithParam<DfaParam> {};

TEST_P(DfaConvergenceTest, RandomScheduleRunsTerminateAndNeverWorsen) {
  const auto [n, ratioStr, seed] = GetParam();
  const auto ratio = Ratio::parse(ratioStr);
  Rng rng(seed);
  const Schedule schedule = Schedule::random(rng);
  const auto result =
      runDfa(randomPartition(n, ratio, rng), schedule, {});
  EXPECT_LE(result.vocEnd, result.vocStart);
  EXPECT_NE(result.stop, DfaStop::kPushBudget);
  result.final.validateCounters();
  const auto want = ratio.elementCounts(n);
  for (Proc x : kAllProcs) EXPECT_EQ(result.final.count(x), want[procSlot(x)]);
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, DfaConvergenceTest,
    ::testing::Combine(::testing::Values(16, 30),
                       ::testing::Values("2:1:1", "3:1:1", "5:2:1", "10:1:1",
                                         "2:2:1", "5:4:1"),
                       ::testing::Values(3u, 42u, 777u)));

TEST(DfaTest, DeterministicGivenSeedAndSchedule) {
  const Ratio ratio{3, 1, 1};
  Rng a(55), b(55);
  const Schedule sa = Schedule::random(a);
  const Schedule sb = Schedule::random(b);
  const auto ra = runDfa(randomPartition(18, ratio, a), sa, {});
  const auto rb = runDfa(randomPartition(18, ratio, b), sb, {});
  EXPECT_EQ(ra.final, rb.final);
  EXPECT_EQ(ra.pushesApplied, rb.pushesApplied);
}

}  // namespace
}  // namespace pushpart
