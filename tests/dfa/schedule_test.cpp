#include "dfa/schedule.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pushpart {
namespace {

TEST(ScheduleTest, FullScheduleHasAllEightSlots) {
  const auto s = Schedule::full();
  EXPECT_EQ(s.slots.size(), 8u);
  std::set<std::pair<char, std::string>> seen;
  for (const auto& slot : s.slots)
    seen.insert({procName(slot.active), directionName(slot.dir)});
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ScheduleTest, RandomScheduleWithinBounds) {
  Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = Schedule::random(rng);
    // Each slow processor contributes 1..4 slots; P never appears.
    ASSERT_GE(s.slots.size(), 2u);
    ASSERT_LE(s.slots.size(), 8u);
    int rSlots = 0, sSlots = 0;
    for (const auto& slot : s.slots) {
      ASSERT_NE(slot.active, Proc::P);
      (slot.active == Proc::R ? rSlots : sSlots)++;
    }
    EXPECT_GE(rSlots, 1);
    EXPECT_LE(rSlots, 4);
    EXPECT_GE(sSlots, 1);
    EXPECT_LE(sSlots, 4);
    // No duplicate (proc, dir) pairs.
    std::set<std::pair<Proc, Direction>> unique;
    for (const auto& slot : s.slots) unique.insert({slot.active, slot.dir});
    EXPECT_EQ(unique.size(), s.slots.size());
  }
}

TEST(ScheduleTest, RandomSchedulesVary) {
  Rng rng(13);
  std::set<std::string> seen;
  for (int trial = 0; trial < 100; ++trial)
    seen.insert(Schedule::random(rng).str());
  // With 1-4 directions per proc and random interleaving there are far more
  // than 50 possible schedules.
  EXPECT_GT(seen.size(), 50u);
}

TEST(ScheduleTest, DirectionsForDeduplicates) {
  Schedule s;
  s.slots = {{Proc::R, Direction::Down},
             {Proc::S, Direction::Up},
             {Proc::R, Direction::Down},
             {Proc::R, Direction::Left}};
  const auto dirs = s.directionsFor(Proc::R);
  ASSERT_EQ(dirs.size(), 2u);
  EXPECT_EQ(dirs[0], Direction::Down);
  EXPECT_EQ(dirs[1], Direction::Left);
  EXPECT_EQ(s.directionsFor(Proc::S).size(), 1u);
  EXPECT_TRUE(s.directionsFor(Proc::P).empty());
}

TEST(ScheduleTest, StrFormat) {
  Schedule s;
  s.slots = {{Proc::R, Direction::Down}, {Proc::S, Direction::Left}};
  EXPECT_EQ(s.str(), "R:Down S:Left");
}

TEST(ScheduleTest, DeterministicForSeed) {
  Rng a(44), b(44);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(Schedule::random(a).str(), Schedule::random(b).str());
}

}  // namespace
}  // namespace pushpart
