#include "dfa/batch.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/check.hpp"

namespace pushpart {
namespace {

TEST(BatchTest, RunsRequestedNumberOfWalks) {
  BatchOptions opts;
  opts.n = 12;
  opts.ratio = Ratio{2, 1, 1};
  opts.runs = 8;
  opts.threads = 3;
  opts.seed = 17;
  std::vector<int> indices;
  runBatch(opts, [&](const BatchRun& run) {
    indices.push_back(run.runIndex);
    EXPECT_LE(run.result.vocEnd, run.result.vocStart);
  });
  EXPECT_EQ(indices.size(), 8u);
  // Every index exactly once, regardless of thread interleaving.
  std::set<int> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 7);
}

TEST(BatchTest, ReproducibleAcrossThreadCounts) {
  BatchOptions opts;
  opts.n = 10;
  opts.ratio = Ratio{3, 1, 1};
  opts.runs = 6;
  opts.seed = 23;

  auto collect = [&](int threads) {
    opts.threads = threads;
    std::vector<std::uint64_t> hashes(static_cast<std::size_t>(opts.runs));
    runBatch(opts, [&](const BatchRun& run) {
      hashes[static_cast<std::size_t>(run.runIndex)] = run.result.final.hash();
    });
    return hashes;
  };

  EXPECT_EQ(collect(1), collect(4));
}

TEST(BatchTest, ZeroRunsIsNoOp) {
  BatchOptions opts;
  opts.runs = 0;
  int calls = 0;
  runBatch(opts, [&](const BatchRun&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(BatchTest, InvalidRatioRejected) {
  BatchOptions opts;
  opts.ratio = Ratio{1, 2, 1};  // R faster than P violates §IV assumption 2
  EXPECT_THROW(runBatch(opts, [](const BatchRun&) {}), CheckError);
}

TEST(BatchTest, CallbackExceptionPropagates) {
  BatchOptions opts;
  opts.n = 8;
  opts.runs = 4;
  opts.threads = 2;
  EXPECT_THROW(runBatch(opts,
                        [](const BatchRun&) {
                          throw std::runtime_error("callback failure");
                        }),
               std::runtime_error);
}

TEST(BatchTest, SchedulesVaryAcrossRuns) {
  BatchOptions opts;
  opts.n = 10;
  opts.runs = 12;
  opts.seed = 31;
  std::set<std::string> schedules;
  runBatch(opts, [&](const BatchRun& run) {
    schedules.insert(run.schedule.str());
  });
  EXPECT_GT(schedules.size(), 4u);
}

}  // namespace
}  // namespace pushpart
