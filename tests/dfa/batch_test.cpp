#include "dfa/batch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "grid/builder.hpp"
#include "support/check.hpp"
#include "support/deadline.hpp"

namespace pushpart {
namespace {

TEST(BatchTest, RunsRequestedNumberOfWalks) {
  BatchOptions opts;
  opts.n = 12;
  opts.ratio = Ratio{2, 1, 1};
  opts.runs = 8;
  opts.threads = 3;
  opts.seed = 17;
  std::vector<int> indices;
  runBatch(opts, [&](const BatchRun& run) {
    indices.push_back(run.runIndex);
    EXPECT_LE(run.result.vocEnd, run.result.vocStart);
  });
  EXPECT_EQ(indices.size(), 8u);
  // Every index exactly once, regardless of thread interleaving.
  std::set<int> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 7);
}

TEST(BatchTest, ReproducibleAcrossThreadCounts) {
  BatchOptions opts;
  opts.n = 10;
  opts.ratio = Ratio{3, 1, 1};
  opts.runs = 6;
  opts.seed = 23;

  auto collect = [&](int threads) {
    opts.threads = threads;
    std::vector<std::uint64_t> hashes(static_cast<std::size_t>(opts.runs));
    runBatch(opts, [&](const BatchRun& run) {
      hashes[static_cast<std::size_t>(run.runIndex)] = run.result.final.hash();
    });
    return hashes;
  };

  EXPECT_EQ(collect(1), collect(4));
}

TEST(BatchTest, ZeroRunsIsNoOp) {
  BatchOptions opts;
  opts.runs = 0;
  int calls = 0;
  runBatch(opts, [&](const BatchRun&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(BatchTest, InvalidRatioRejected) {
  BatchOptions opts;
  opts.ratio = Ratio{1, 2, 1};  // R faster than P violates §IV assumption 2
  EXPECT_THROW(runBatch(opts, [](const BatchRun&) {}), CheckError);
}

TEST(BatchTest, NegativeRunsRejectedWithPreciseMessage) {
  BatchOptions opts;
  opts.runs = -3;
  try {
    runBatch(opts, [](const BatchRun&) {});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("runs"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

TEST(BatchTest, NegativeThreadsRejectedWithPreciseMessage) {
  BatchOptions opts;
  opts.threads = -2;
  try {
    runBatch(opts, [](const BatchRun&) {});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("threads"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-2"), std::string::npos);
  }
}

TEST(BatchTest, ClusteredStartFractionOutsideUnitIntervalRejected) {
  for (double bad : {-0.1, 1.5, std::numeric_limits<double>::quiet_NaN()}) {
    BatchOptions opts;
    opts.clusteredStartFraction = bad;
    try {
      runBatch(opts, [](const BatchRun&) {});
      FAIL() << "expected CheckError for clusteredStartFraction=" << bad;
    } catch (const CheckError& e) {
      EXPECT_NE(std::string(e.what()).find("clusteredStartFraction"),
                std::string::npos);
    }
  }
}

TEST(BatchTest, UnitIntervalEndpointsAccepted) {
  for (double ok : {0.0, 1.0}) {
    BatchOptions opts;
    opts.n = 8;
    opts.runs = 2;
    opts.clusteredStartFraction = ok;
    const BatchSummary summary = runBatch(opts, [](const BatchRun&) {});
    EXPECT_TRUE(summary.allCompleted());
  }
}

TEST(BatchTest, CallbackExceptionRecordedNotRethrown) {
  BatchOptions opts;
  opts.n = 8;
  opts.runs = 4;
  opts.threads = 2;
  // A throwing callback must not kill the process, deadlock the workers or
  // abort the batch; every run is attempted and every failure is recorded.
  const BatchSummary summary = runBatch(opts, [](const BatchRun&) {
    throw std::runtime_error("callback failure");
  });
  EXPECT_EQ(summary.completed, 0);
  ASSERT_EQ(summary.failures.size(), 4u);
  EXPECT_FALSE(summary.allCompleted());
  for (std::size_t i = 0; i < summary.failures.size(); ++i) {
    EXPECT_EQ(summary.failures[i].runIndex, static_cast<int>(i));
    EXPECT_EQ(summary.failures[i].message, "callback failure");
  }
}

TEST(BatchTest, FailedRunDoesNotAbortTheOthers) {
  BatchOptions opts;
  opts.n = 8;
  opts.runs = 6;
  opts.threads = 3;
  const BatchSummary summary = runBatch(opts, [](const BatchRun& run) {
    if (run.runIndex == 2) throw std::runtime_error("only run 2 fails");
  });
  EXPECT_EQ(summary.completed, 5);
  ASSERT_EQ(summary.failures.size(), 1u);
  EXPECT_EQ(summary.failures.front().runIndex, 2);
  EXPECT_EQ(summary.failures.front().message, "only run 2 fails");
}

TEST(BatchTest, NonStdExceptionRecordedAsUnknown) {
  BatchOptions opts;
  opts.n = 8;
  opts.runs = 1;
  opts.threads = 1;
  const BatchSummary summary =
      runBatch(opts, [](const BatchRun&) { throw 42; });
  EXPECT_EQ(summary.completed, 0);
  ASSERT_EQ(summary.failures.size(), 1u);
  EXPECT_EQ(summary.failures.front().message, "unknown error");
}

TEST(BatchTest, CleanBatchReportsAllCompleted) {
  BatchOptions opts;
  opts.n = 8;
  opts.runs = 5;
  const BatchSummary summary = runBatch(opts, [](const BatchRun&) {});
  EXPECT_EQ(summary.completed, 5);
  EXPECT_TRUE(summary.allCompleted());
}

TEST(BatchTest, PreCancelledBatchSkipsEveryRunWithoutThrowing) {
  BatchOptions opts;
  opts.n = 12;
  opts.runs = 5;
  opts.threads = 2;
  opts.cancel.requestCancel();
  int calls = 0;
  const BatchSummary summary = runBatch(opts, [&](const BatchRun&) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(summary.completed, 0);
  EXPECT_EQ(summary.skippedRuns, 5);
  EXPECT_TRUE(summary.truncated());
  EXPECT_FALSE(summary.allCompleted());
  EXPECT_TRUE(summary.failures.empty());
}

TEST(BatchTest, CancelDuringBatchReturnsBestSoFarTruncated) {
  BatchOptions opts;
  opts.n = 12;
  opts.runs = 8;
  opts.threads = 1;  // deterministic delivery order
  int delivered = 0;
  const BatchSummary summary = runBatch(opts, [&](const BatchRun& run) {
    ++delivered;
    // The already-delivered runs finished naturally, never torn.
    EXPECT_NE(run.result.stop, DfaStop::kCancelled);
    EXPECT_LE(run.result.vocEnd, run.result.vocStart);
    if (delivered == 3) opts.cancel.requestCancel();
  });
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(summary.completed, 3);
  EXPECT_EQ(summary.skippedRuns, 5);
  EXPECT_TRUE(summary.truncated());
}

/// A clock whose time is the number of times it has been read — it lets a
/// single-threaded test expire a deadline deterministically partway through
/// a walk, with no sleeping and no second thread.
class CountingClock : public Clock {
 public:
  double nowSeconds() const override {
    return static_cast<double>(reads_++);
  }

 private:
  mutable std::int64_t reads_ = 0;
};

TEST(BatchTest, MidWalkDeadlineExpiryStopsWithCancelledAndIntactPartition) {
  // The deadline expires after a handful of cancel-token polls: the walk is
  // genuinely underway when it stops.
  CountingClock clock;
  DfaOptions dfa;
  dfa.cancel = CancelToken{Deadline::after(5.0, clock)};
  dfa.cancelCheckEvery = 1;  // poll at every push
  Rng rng(7);
  const DfaResult result = runDfa(randomPartition(24, Ratio{2, 1, 1}, rng),
                                  Schedule::random(rng), dfa);
  EXPECT_EQ(result.stop, DfaStop::kCancelled);
  EXPECT_GT(result.pushesApplied, 0);
  // Best-so-far state is valid: pushes are transactional, so the VoC never
  // rose and the result is a real (if unfinished) partition.
  EXPECT_LE(result.vocEnd, result.vocStart);
  EXPECT_EQ(result.final.volumeOfCommunication(), result.vocEnd);
}

TEST(BatchTest, PreCancelledWalkStopsBeforeAnyPush) {
  DfaOptions dfa;
  dfa.cancel.requestCancel();
  Rng rng(7);
  const DfaResult result = runDfa(randomPartition(16, Ratio{2, 1, 1}, rng),
                                  Schedule::random(rng), dfa);
  EXPECT_EQ(result.stop, DfaStop::kCancelled);
  EXPECT_EQ(result.pushesApplied, 0);
  EXPECT_EQ(result.vocEnd, result.vocStart);
}

TEST(BatchTest, SchedulesVaryAcrossRuns) {
  BatchOptions opts;
  opts.n = 10;
  opts.runs = 12;
  opts.seed = 31;
  std::set<std::string> schedules;
  runBatch(opts, [&](const BatchRun& run) {
    schedules.insert(run.schedule.str());
  });
  EXPECT_GT(schedules.size(), 4u);
}

}  // namespace
}  // namespace pushpart
