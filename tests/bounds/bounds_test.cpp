#include "bounds/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "shapes/candidates.hpp"
#include "verify/oracle.hpp"

namespace pushpart {
namespace {

TEST(MinLineSpan, SmallExactValues) {
  EXPECT_EQ(minLineSpan(0, 10), 0);
  EXPECT_EQ(minLineSpan(-3, 10), 0);
  EXPECT_EQ(minLineSpan(1, 10), 2);   // 1x1
  EXPECT_EQ(minLineSpan(2, 10), 3);   // 1x2
  EXPECT_EQ(minLineSpan(3, 10), 4);   // 1x3 or 2x2
  EXPECT_EQ(minLineSpan(4, 10), 4);   // 2x2
  EXPECT_EQ(minLineSpan(5, 10), 5);   // 2x3
  EXPECT_EQ(minLineSpan(6, 10), 5);   // 2x3
  EXPECT_EQ(minLineSpan(7, 10), 6);   // 3x3 (or 2x4)
  EXPECT_EQ(minLineSpan(12, 10), 7);  // 3x4
  EXPECT_EQ(minLineSpan(100, 10), 20);
}

TEST(MinLineSpan, ClampsToTheGrid) {
  // 5 cells on a 3x3 grid: 2x3 works; 1x5 does not exist.
  EXPECT_EQ(minLineSpan(5, 3), 5);
  // The whole grid always satisfies r = c = n.
  EXPECT_EQ(minLineSpan(9, 3), 6);
}

TEST(MinLineSpan, BruteForceAgreement) {
  const int n = 12;
  for (std::int64_t cells = 1; cells <= n * n; ++cells) {
    std::int64_t best = 1000;
    for (std::int64_t r = 1; r <= n; ++r)
      for (std::int64_t c = 1; c <= n; ++c)
        if (r * c >= cells) best = std::min(best, r + c);
    EXPECT_EQ(minLineSpan(cells, n), best) << "cells=" << cells;
  }
}

TEST(VocLowerBound, TightAtTinyGrid) {
  // n=2, counts {P=2, R=1, S=1}: spans 3+2+2=7 -> 2*7-8 = 6, which the
  // exhaustive small-N oracle confirms is the true optimum.
  const Ratio ratio{2, 1, 1};
  EXPECT_EQ(vocLowerBound(2, ratio), 6);
  const SmallNOracleResult exact = smallNOptimalVoc(2, ratio);
  ASSERT_EQ(exact.tier, SmallNOracleTier::kExhaustive);
  EXPECT_EQ(exact.minVoc, 6);
}

TEST(VocLowerBound, NeverExceedsTheExhaustiveOptimum) {
  for (const Ratio& ratio :
       {Ratio{2, 1, 1}, Ratio{3, 1, 1}, Ratio{5, 2, 1}, Ratio{2, 2, 1}}) {
    for (const int n : {3, 4, 5}) {
      const SmallNOracleResult exact = smallNOptimalVoc(n, ratio);
      if (exact.tier != SmallNOracleTier::kExhaustive) continue;
      EXPECT_LE(vocLowerBound(n, ratio), exact.minVoc)
          << "n=" << n << " ratio=" << ratio.str();
    }
  }
}

TEST(VocLowerBound, BelowEveryCanonicalCandidate) {
  for (const Ratio& ratio : paperRatios()) {
    for (const int n : {40, 90}) {
      const std::int64_t bound = vocLowerBound(n, ratio);
      for (const CandidateShape shape : kAllCandidates) {
        if (!candidateFeasible(shape, n, ratio)) continue;
        const auto voc =
            makeCandidate(shape, n, ratio).volumeOfCommunication();
        EXPECT_LE(bound, voc) << candidateName(shape) << " n=" << n
                              << " ratio=" << ratio.str();
      }
    }
  }
}

TEST(VocLowerBound, ConvergesToTheContinuousForm) {
  const Ratio ratio{4, 2, 1};
  const double norm = normalizedVocLowerBound(ratio);
  const int n = 600;
  const double integer =
      static_cast<double>(vocLowerBound(n, ratio)) /
      (static_cast<double>(n) * static_cast<double>(n));
  EXPECT_NEAR(integer, norm, 0.02);
}

TEST(NormalizedVocLowerBound, ClosedFormValues) {
  // 2:1:1 -> 2(sqrt(1/2) + sqrt(1/4) + sqrt(1/4)) - 2 = sqrt(2).
  EXPECT_NEAR(normalizedVocLowerBound(Ratio{2, 1, 1}), std::sqrt(2.0), 1e-12);
  // 1:1:1 -> 2*sqrt(3) - 2.
  EXPECT_NEAR(normalizedVocLowerBound(Ratio{1, 1, 1}),
              2.0 * std::sqrt(3.0) - 2.0, 1e-12);
}

TEST(OptimalityGapPct, Basics) {
  EXPECT_DOUBLE_EQ(optimalityGapPct(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(optimalityGapPct(90, 100), 0.0);   // never negative
  EXPECT_DOUBLE_EQ(optimalityGapPct(110, 100), 10.0);
  EXPECT_DOUBLE_EQ(optimalityGapPct(5, 0), 500.0);    // degenerate bound
}

}  // namespace
}  // namespace pushpart
