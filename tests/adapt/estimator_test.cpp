#include "adapt/estimator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pushpart {
namespace {

/// One phase where every node delivers `speed(x)` units/second over one
/// busy second.
PhaseSample phaseAt(double at, const Ratio& speed) {
  PhaseSample sample;
  sample.at = at;
  for (Proc x : kAllProcs) {
    sample.node(x).proc = x;
    sample.node(x).units = static_cast<std::int64_t>(speed.speed(x) * 1e6);
    sample.node(x).busySeconds = 1.0;
  }
  return sample;
}

TEST(RatioEstimatorOptionsTest, ValidateRejectsDegenerateKnobs) {
  RatioEstimatorOptions bad;
  bad.alpha = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = RatioEstimatorOptions{};
  bad.outlierClampFactor = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = RatioEstimatorOptions{};
  bad.demoteAfterStalls = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = RatioEstimatorOptions{};
  bad.demotedSpeedFraction = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(RatioEstimatorTest, WarmupRequiresAHealthySampleFromEveryNode) {
  RatioEstimator estimator;
  EXPECT_FALSE(estimator.estimate().warmedUp);
  EXPECT_THROW(estimator.estimate().canonical(), std::logic_error);

  PhaseSample sample = phaseAt(0.0, Ratio{8, 3, 1.5});
  sample.node(Proc::R).units = 0;  // R made no progress this phase
  estimator.observe(sample);
  EXPECT_FALSE(estimator.estimate().warmedUp);

  estimator.observe(phaseAt(1.0, Ratio{8, 3, 1.5}));
  EXPECT_TRUE(estimator.estimate().warmedUp);
}

TEST(RatioEstimatorTest, CanonicalEstimateSortsFastestFirst) {
  RatioEstimator estimator;
  estimator.observe(phaseAt(0.0, Ratio{8, 3, 1.5}));
  const RatioEstimate est = estimator.estimate();
  EXPECT_EQ(est.order[0], Proc::P);
  EXPECT_EQ(est.order[1], Proc::R);
  EXPECT_EQ(est.order[2], Proc::S);
  const Ratio canonical = est.canonical();
  EXPECT_NEAR(canonical.p, 8.0 / 1.5, 1e-9);
  EXPECT_NEAR(canonical.r, 3.0 / 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(canonical.s, 1.0);
}

TEST(RatioEstimatorTest, OrderFollowsTheNodesNotTheLabels) {
  // Physical R overtakes P: the canonical order must report R as the node
  // that should play P, with the ratio still sorted fastest-first.
  RatioEstimator estimator;
  PhaseSample sample;
  sample.node(Proc::R).units = 10'000'000;
  sample.node(Proc::R).busySeconds = 1.0;
  sample.node(Proc::S).units = 2'000'000;
  sample.node(Proc::S).busySeconds = 1.0;
  sample.node(Proc::P).units = 8'000'000;
  sample.node(Proc::P).busySeconds = 1.0;
  estimator.observe(sample);
  const RatioEstimate est = estimator.estimate();
  EXPECT_EQ(est.order[0], Proc::R);
  EXPECT_EQ(est.order[1], Proc::P);
  EXPECT_EQ(est.order[2], Proc::S);
  const Ratio canonical = est.canonical();
  EXPECT_NEAR(canonical.p, 5.0, 1e-9);
  EXPECT_NEAR(canonical.r, 4.0, 1e-9);
}

TEST(RatioEstimatorTest, EwmaFoldsNewSamplesAtAlpha) {
  RatioEstimatorOptions options;
  options.alpha = 0.5;
  RatioEstimator estimator(options);
  estimator.observe(phaseAt(0.0, Ratio{4, 2, 1}));  // initializes the EWMA
  estimator.observe(phaseAt(1.0, Ratio{8, 2, 1}));  // P doubled
  // P: 0.5 * 4e6 + 0.5 * 8e6 = 6e6; R and S unchanged.
  EXPECT_NEAR(estimator.node(Proc::P).throughput, 6e6, 1e-3);
  EXPECT_NEAR(estimator.node(Proc::R).throughput, 2e6, 1e-3);
  EXPECT_EQ(estimator.counters().phases, 2u);
}

TEST(RatioEstimatorTest, OutlierClampBoundsOnePhasesInfluence) {
  RatioEstimatorOptions options;
  options.alpha = 0.5;
  options.outlierClampFactor = 2.0;
  RatioEstimator estimator(options);
  estimator.observe(phaseAt(0.0, Ratio{4, 2, 1}));
  // An absurd 100x burst on P enters clamped to 2x the estimate.
  PhaseSample burst = phaseAt(1.0, Ratio{4, 2, 1});
  burst.node(Proc::P).units = 400'000'000;
  estimator.observe(burst);
  EXPECT_NEAR(estimator.node(Proc::P).throughput,
              0.5 * 4e6 + 0.5 * 8e6, 1e-3);
  EXPECT_EQ(estimator.counters().clampedSamples, 1u);
}

TEST(RatioEstimatorTest, StallDemotionFloorsSpeedAndPreservesThePrior) {
  RatioEstimator estimator;  // demoteAfterStalls = 2
  estimator.observe(phaseAt(0.0, Ratio{8, 3, 1.5}));

  PhaseSample stalled = phaseAt(1.0, Ratio{8, 3, 1.5});
  stalled.node(Proc::R).units = 0;
  stalled.node(Proc::R).stalled = true;
  estimator.observe(stalled);
  EXPECT_FALSE(estimator.node(Proc::R).demoted);  // one stall is noise
  estimator.observe(stalled);
  EXPECT_TRUE(estimator.node(Proc::R).demoted);
  EXPECT_EQ(estimator.counters().stallDemotions, 1u);

  // Effective speed drops to the floor fraction of the fastest healthy
  // node; the EWMA itself still remembers the last healthy throughput.
  const RatioEstimate est = estimator.estimate();
  EXPECT_NEAR(est.speed[procSlot(Proc::R)], 0.02 * 8e6, 1e-3);
  EXPECT_NEAR(estimator.node(Proc::R).throughput, 3e6, 1e-3);

  // One healthy sample lifts the demotion and snaps back to the prior.
  estimator.observe(phaseAt(3.0, Ratio{8, 3, 1.5}));
  EXPECT_FALSE(estimator.node(Proc::R).demoted);
  EXPECT_EQ(estimator.counters().recoveries, 1u);
  EXPECT_NEAR(estimator.estimate().speed[procSlot(Proc::R)], 3e6, 1e-3);
}

TEST(RatioEstimatorTest, DeathDemotesImmediatelyAndRecoversOnAHealthySample) {
  RatioEstimator estimator;
  estimator.observe(phaseAt(0.0, Ratio{8, 3, 1.5}));

  PhaseSample dead = phaseAt(1.0, Ratio{8, 3, 1.5});
  dead.node(Proc::S).units = 0;
  dead.node(Proc::S).busySeconds = 0.0;
  dead.node(Proc::S).dead = true;
  estimator.observe(dead);
  EXPECT_TRUE(estimator.node(Proc::S).demoted);
  EXPECT_TRUE(estimator.node(Proc::S).dead);
  EXPECT_EQ(estimator.counters().deathDemotions, 1u);
  // Repeated dead phases count one demotion, not one per phase.
  estimator.observe(dead);
  EXPECT_EQ(estimator.counters().deathDemotions, 1u);

  const RatioEstimate est = estimator.estimate();
  EXPECT_NEAR(est.speed[procSlot(Proc::S)], 0.02 * 8e6, 1e-3);
  // The canonical ratio stays finite with the dead node on the floor.
  EXPECT_NEAR(est.canonical().p, 1.0 / 0.02, 1e-6);

  estimator.observe(phaseAt(3.0, Ratio{8, 3, 1.5}));
  EXPECT_FALSE(estimator.node(Proc::S).demoted);
  EXPECT_FALSE(estimator.node(Proc::S).dead);
  EXPECT_EQ(estimator.counters().recoveries, 1u);
  EXPECT_NEAR(estimator.estimate().canonical().p, 8.0 / 1.5, 1e-9);
}

}  // namespace
}  // namespace pushpart
