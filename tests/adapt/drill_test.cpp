#include "adapt/drill.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pushpart {
namespace {

TEST(DriftScenarioOptionsTest, ValidateRejectsFaultsOnTheFastNode) {
  DriftScenarioOptions options;
  options.faults.kills.push_back(NodeKill{2, 10.0, 20.0});
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options = DriftScenarioOptions{};
  options.faults.slowNodes.push_back(SlowNode{2, 10.0, 20.0, 2.0});
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(DriftScenarioOptionsTest, ValidateRejectsWanderBoundsThatReorderP) {
  DriftScenarioOptions options;
  // Node 0's wander ceiling above node 2's floor: P could stop being the
  // fastest, which the simulator's ratio validity forbids.
  options.wanderMax[0] = options.wanderMin[2] + 1.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(RunDriftDrillTest, QuietScenarioScoresEveryPhaseWithNoReplans) {
  DriftScenarioOptions options;
  options.phases = 40;
  options.wanderStep = 0.0;  // constant speeds, no faults
  Oracle oracle(OracleOptions{});
  const DriftDrillReport report = runDriftDrill(oracle, options);

  ASSERT_EQ(report.records.size(), 40u);
  EXPECT_TRUE(report.windows.empty());
  EXPECT_EQ(report.stats.replans, 0u);
  EXPECT_EQ(report.stats.invalidations, 0u);
  EXPECT_NEAR(report.regretFactor(), 1.0, 0.02);
  EXPECT_TRUE(report.allReconverged());  // vacuously: no windows
  for (const DriftPhaseRecord& record : report.records) {
    EXPECT_GT(record.servedCost, 0.0);
    EXPECT_GT(record.bestCost, 0.0);
    EXPECT_GE(record.servedCost, record.bestCost * 0.999);
  }
}

TEST(RunDriftDrillTest, SlowWindowTriggersReplanAndReconverges) {
  DriftScenarioOptions options;
  options.phases = 80;
  options.faults.slowNodes.push_back(SlowNode{0, 20.0, 40.0, 2.5});
  Oracle oracle(OracleOptions{});
  const DriftDrillReport report = runDriftDrill(oracle, options);

  ASSERT_EQ(report.windows.size(), 1u);
  EXPECT_FALSE(report.windows[0].kill);
  EXPECT_TRUE(report.windows[0].replanDuring);
  EXPECT_TRUE(report.windows[0].reconverged);
  EXPECT_GT(report.stats.replans, 0u);
  EXPECT_TRUE(report.regretOk(options.regretBound));
}

}  // namespace
}  // namespace pushpart
