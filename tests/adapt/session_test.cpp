#include "adapt/session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "support/deadline.hpp"

namespace pushpart {
namespace {

/// One phase of telemetry where every node delivers `speed(x)` units/second.
PhaseSample phaseAt(double at, const Ratio& speed) {
  PhaseSample sample;
  sample.at = at;
  for (Proc x : kAllProcs) {
    sample.node(x).proc = x;
    sample.node(x).units = static_cast<std::int64_t>(speed.speed(x) * 1e6);
    sample.node(x).busySeconds = 1.0;
  }
  return sample;
}

AdaptiveSessionOptions sessionOptions(const FakeClock& clock) {
  AdaptiveSessionOptions options;
  options.base.n = 96;
  options.base.ratio = Ratio{5, 2, 1};
  options.clock = &clock;
  return options;
}

TEST(AdaptiveSessionOptionsTest, ValidateRejectsDegenerateKnobs) {
  AdaptiveSessionOptions bad;
  bad.staleGapPct = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = AdaptiveSessionOptions{};
  bad.hysteresisPhases = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = AdaptiveSessionOptions{};
  bad.minReplanSeconds = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(AdaptiveSessionTest, ObserveBeforeStartReportsNoPlan) {
  FakeClock clock;
  Oracle oracle(OracleOptions{});
  AdaptiveSession session(oracle, sessionOptions(clock));
  const DriftVerdict verdict = session.observe(phaseAt(0.0, Ratio{5, 2, 1}));
  EXPECT_FALSE(verdict.stale);
  EXPECT_EQ(verdict.reason, DriftReason::kNoPlan);
  EXPECT_EQ(session.stats().phases, 1u);
}

TEST(AdaptiveSessionTest, MatchingTelemetryStaysFreshAndNeverReplans) {
  FakeClock clock;
  Oracle oracle(OracleOptions{});
  AdaptiveSession session(oracle, sessionOptions(clock));
  const PlanResponse start = session.start();
  ASSERT_FALSE(start.shed);

  for (int phase = 0; phase < 10; ++phase) {
    clock.advance(1.0);
    const DriftVerdict verdict =
        session.observe(phaseAt(clock.nowSeconds(), Ratio{5, 2, 1}));
    EXPECT_FALSE(verdict.stale) << "phase " << phase;
  }
  const AdaptiveStats stats = session.stats();
  EXPECT_EQ(stats.phases, 10u);
  EXPECT_EQ(stats.replans, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(stats.staleVerdicts, 0u);
  EXPECT_EQ(session.plannedRatio(), (Ratio{5, 2, 1}));
}

TEST(AdaptiveSessionTest, HysteresisHoldsOnceThenInvalidatesAndReplans) {
  FakeClock clock;
  Oracle oracle(OracleOptions{});
  AdaptiveSessionOptions options = sessionOptions(clock);
  options.hysteresisPhases = 2;
  AdaptiveSession session(oracle, options);
  ASSERT_FALSE(session.start().shed);
  const std::string keyBefore = session.current().key;

  // The platform now runs at 10:3:1; the first stale phase is absorbed.
  clock.advance(1.0);
  const DriftVerdict first =
      session.observe(phaseAt(clock.nowSeconds(), Ratio{10, 3, 1}));
  EXPECT_TRUE(first.stale);
  EXPECT_EQ(session.stats().replans, 0u);
  EXPECT_EQ(session.stats().hysteresisHolds, 1u);

  // The second consecutive stale phase fires: invalidate, re-key, re-plan.
  clock.advance(1.0);
  const DriftVerdict second =
      session.observe(phaseAt(clock.nowSeconds(), Ratio{10, 3, 1}));
  EXPECT_TRUE(second.stale);
  const AdaptiveStats stats = session.stats();
  EXPECT_EQ(stats.replans, 1u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.staleVerdicts, 2u);
  EXPECT_NE(session.current().key, keyBefore);
  // The new plan's ratio is the estimated canonical ratio.
  EXPECT_NEAR(session.plannedRatio().p, 10.0, 1e-6);
  EXPECT_NEAR(session.plannedRatio().r, 3.0, 1e-6);
  // The stale entry was dropped through the oracle's cache.
  EXPECT_EQ(oracle.stats().cache.staleInvalidations, 1u);

  // Telemetry matching the new plan settles fresh again.
  clock.advance(1.0);
  EXPECT_FALSE(
      session.observe(phaseAt(clock.nowSeconds(), Ratio{10, 3, 1})).stale);
  EXPECT_EQ(session.stats().replans, 1u);
}

TEST(AdaptiveSessionTest, MinReplanIntervalDefersThenFiresWithStreakKept) {
  FakeClock clock;
  Oracle oracle(OracleOptions{});
  AdaptiveSessionOptions options = sessionOptions(clock);
  options.hysteresisPhases = 1;
  options.minReplanSeconds = 100.0;
  AdaptiveSession session(oracle, options);
  ASSERT_FALSE(session.start().shed);

  // Stale one second after the start: hysteresis is satisfied but the
  // interval (measured from the start's plan) is still closed.
  clock.advance(1.0);
  EXPECT_TRUE(
      session.observe(phaseAt(clock.nowSeconds(), Ratio{10, 3, 1})).stale);
  EXPECT_EQ(session.stats().replans, 0u);
  EXPECT_EQ(session.stats().intervalHolds, 1u);

  // The interval opens: the held streak fires without re-accumulating.
  clock.advance(100.0);
  EXPECT_TRUE(
      session.observe(phaseAt(clock.nowSeconds(), Ratio{10, 3, 1})).stale);
  EXPECT_EQ(session.stats().replans, 1u);
}

TEST(AdaptiveSessionTest, WarmupPhasesNeverConsultTheMonitor) {
  FakeClock clock;
  Oracle oracle(OracleOptions{});
  AdaptiveSession session(oracle, sessionOptions(clock));
  ASSERT_FALSE(session.start().shed);

  // R reports nothing for two phases: the estimator cannot be warmed up,
  // so even wildly-off telemetry from the others is a warmup verdict.
  PhaseSample partial = phaseAt(1.0, Ratio{50, 20, 1});
  partial.node(Proc::R).units = 0;
  const DriftVerdict verdict = session.observe(partial);
  EXPECT_FALSE(verdict.stale);
  EXPECT_EQ(verdict.reason, DriftReason::kWarmup);
  EXPECT_EQ(session.stats().warmupPhases, 1u);
}

// A telemetry feeder and an inspector overlap freely — the session's mutex
// serializes them. This test also rides the TSan suite (see
// .github/workflows/ci.yml), where the lock discipline is the assertion.
TEST(AdaptiveSessionTest, ConcurrentObserverAndInspectorStayConsistent) {
  FakeClock clock;
  Oracle oracle(OracleOptions{});
  AdaptiveSessionOptions options = sessionOptions(clock);
  options.base.n = 48;  // keep the replans cheap
  AdaptiveSession session(oracle, options);
  ASSERT_FALSE(session.start().shed);

  constexpr int kPhases = 200;
  std::atomic<bool> done{false};
  std::thread observer([&]() {
    for (int phase = 0; phase < kPhases; ++phase) {
      // Alternate between two regimes so replans actually happen while the
      // inspector reads.
      const Ratio speed =
          (phase / 25) % 2 == 0 ? Ratio{5, 2, 1} : Ratio{10, 3, 1};
      session.observe(phaseAt(static_cast<double>(phase), speed));
    }
    done = true;
  });
  std::thread inspector([&]() {
    std::uint64_t lastPhases = 0;
    while (!done.load()) {
      const AdaptiveStats stats = session.stats();
      EXPECT_GE(stats.phases, lastPhases);  // counters are monotonic
      lastPhases = stats.phases;
      EXPECT_GE(stats.staleVerdicts, stats.replans);
      (void)session.estimate();
      (void)session.current();
      (void)session.plannedRatio();
      (void)session.planOrder();
      (void)session.events();
      std::this_thread::yield();
    }
  });
  observer.join();
  inspector.join();

  EXPECT_EQ(session.stats().phases, static_cast<std::uint64_t>(kPhases));
  EXPECT_GT(session.stats().replans, 0u);
  EXPECT_EQ(session.stats().invalidations, session.stats().replans);
}

}  // namespace
}  // namespace pushpart
