#include "adapt/drift.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "model/optimal.hpp"

namespace pushpart {
namespace {

DriftOptions optionsWithGap(double gapPct) {
  DriftOptions options;
  options.n = 96;
  options.staleGapPct = gapPct;
  return options;
}

/// Adopts the genuinely optimal plan at `ratio` so re-cost gaps measure
/// drift, not a bad starting plan. Returns the adopted shape.
CandidateShape adoptOptimalAt(DriftMonitor& monitor, const Ratio& ratio) {
  Machine machine = monitor.options().machine;
  machine.ratio = ratio;
  const RankedCandidate best =
      selectOptimal(monitor.options().algo, monitor.options().n, machine,
                    monitor.options().topology, monitor.options().star);
  monitor.adopt(best.shape, ratio, best.voc);
  return best.shape;
}

/// Any shape that is not `taken` — for planting a foreign-winner cell.
CandidateShape someOtherShape(CandidateShape taken) {
  return taken == CandidateShape::kSquareRectangle
             ? CandidateShape::kBlockRectangle
             : CandidateShape::kSquareRectangle;
}

TEST(DriftOptionsTest, ValidateRejectsDegenerateKnobs) {
  DriftOptions bad;
  bad.n = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = DriftOptions{};
  bad.staleGapPct = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(DriftMonitorTest, FreshWithNoPlanAdopted) {
  const DriftMonitor monitor(optionsWithGap(5.0));
  EXPECT_FALSE(monitor.hasPlan());
  const DriftVerdict verdict = monitor.evaluate(Ratio{5, 2, 1});
  EXPECT_FALSE(verdict.stale);
  EXPECT_EQ(verdict.reason, DriftReason::kNoPlan);
}

TEST(DriftMonitorTest, FreshAtThePlannedRatio) {
  DriftMonitor monitor(optionsWithGap(5.0));
  adoptOptimalAt(monitor, Ratio{5, 2, 1});
  const DriftVerdict verdict = monitor.evaluate(Ratio{5, 2, 1});
  EXPECT_FALSE(verdict.stale);
  EXPECT_EQ(verdict.reason, DriftReason::kRecostOk);
  EXPECT_NEAR(verdict.gapPct, 0.0, 1.0);  // only integer-rounding slack
}

TEST(DriftMonitorTest, RecostGapFlagsShareDriftWithoutAnAtlas) {
  DriftMonitor monitor(optionsWithGap(5.0));
  adoptOptimalAt(monitor, Ratio{2, 1, 1});
  // The platform now runs at 10:3:1 — the frozen 2:1:1 shares starve P.
  const DriftVerdict verdict = monitor.evaluate(Ratio{10, 3, 1});
  EXPECT_TRUE(verdict.stale);
  EXPECT_EQ(verdict.reason, DriftReason::kRecostGap);
  EXPECT_GT(verdict.gapPct, 5.0);
}

TEST(DriftMonitorTest, LogicalSpeedsOverrideTheCanonicalComponents) {
  DriftMonitor monitor(optionsWithGap(5.0));
  adoptOptimalAt(monitor, Ratio{5, 2, 1});
  // Same canonical estimate, but the node playing P has actually slowed to
  // the middle speed (a relabel the fastest-first sort hides): the frozen
  // plan must be costed at the role's real speed and go stale.
  const DriftVerdict relabeled =
      monitor.evaluate(Ratio{5, 2, 1}, {/*R=*/5.0, /*S=*/1.0, /*P=*/2.0});
  EXPECT_TRUE(relabeled.stale);
  EXPECT_GT(relabeled.gapPct, 5.0);
  // Matching logical speeds stay fresh.
  const DriftVerdict aligned =
      monitor.evaluate(Ratio{5, 2, 1}, {/*R=*/2.0, /*S=*/1.0, /*P=*/5.0});
  EXPECT_FALSE(aligned.stale);
}

TEST(DriftMonitorTest, NonPositiveLogicalSpeedIsInfinitelyStale) {
  DriftMonitor monitor(optionsWithGap(5.0));
  adoptOptimalAt(monitor, Ratio{5, 2, 1});
  const DriftVerdict verdict =
      monitor.evaluate(Ratio{5, 2, 1}, {0.0, 1.0, 5.0});
  EXPECT_TRUE(verdict.stale);
  EXPECT_EQ(verdict.reason, DriftReason::kRecostGap);
}

// --- Atlas-backed paths ----------------------------------------------------

std::shared_ptr<PlanAtlas> emptyAtlas() {
  AtlasGridSpec spec;
  spec.prMin = 1.0;
  spec.prMax = 13.0;
  spec.prSteps = 7;  // P_r step 2: cells at 1, 3, 5, ...
  spec.rrMin = 1.0;
  spec.rrMax = 7.0;
  spec.rrSteps = 7;  // R_r step 1
  return std::make_shared<PlanAtlas>(spec, AtlasBuildInfo{});
}

AtlasCell solvedCell(CandidateShape shape, double runnerUpGapPct) {
  AtlasCell cell;
  cell.solved = true;
  cell.shape = shape;
  cell.execSeconds = 1.0;
  cell.runnerUpGapPct = runnerUpGapPct;
  return cell;
}

TEST(DriftMonitorTest, SameAtlasCellIsFreshWithoutARecost) {
  auto atlas = emptyAtlas();
  DriftOptions options = optionsWithGap(5.0);
  options.atlas = atlas;
  DriftMonitor monitor(options);
  adoptOptimalAt(monitor, Ratio{5, 2, 1});

  // A small wiggle that stays inside the plan's own cell (steps are 2 x 1,
  // so +-0.4 rounds back to the same grid point) short-circuits fresh.
  const DriftVerdict verdict = monitor.evaluate(Ratio{5.4, 2.2, 1});
  EXPECT_FALSE(verdict.stale);
  EXPECT_EQ(verdict.reason, DriftReason::kSameCell);
  EXPECT_FALSE(verdict.cellChanged);
  EXPECT_EQ(verdict.gapPct, 0.0);
}

TEST(DriftMonitorTest, DecisiveForeignCellCertifiesStaleness) {
  auto atlas = emptyAtlas();
  DriftOptions options = optionsWithGap(5.0);
  options.atlas = atlas;
  DriftMonitor monitor(options);
  const CandidateShape adopted = adoptOptimalAt(monitor, Ratio{2, 1, 1});

  // Install the cell the drifted estimate will land in: solved, lone (so
  // off-boundary), a different winner, and a decisive runner-up gap.
  int i = -1, j = -1;
  ASSERT_TRUE(atlas->assign(Ratio{11, 4, 1}, i, j));
  atlas->insert(i, j, solvedCell(someOtherShape(adopted), 40.0));

  const DriftVerdict verdict = monitor.evaluate(Ratio{11, 4, 1});
  EXPECT_TRUE(verdict.stale);
  EXPECT_EQ(verdict.reason, DriftReason::kCellCertificate);
  EXPECT_TRUE(verdict.cellChanged);
  EXPECT_EQ(verdict.cellI, i);
  EXPECT_EQ(verdict.cellJ, j);
}

TEST(DriftMonitorTest, TimidForeignCellFallsBackToTheRecostGap) {
  auto atlas = emptyAtlas();
  DriftOptions options = optionsWithGap(5.0);
  options.atlas = atlas;
  DriftMonitor monitor(options);
  const CandidateShape adopted = adoptOptimalAt(monitor, Ratio{5, 2, 1});

  // The neighbouring cell's winner differs but its runner-up gap sits below
  // the threshold — a boundary-hugging hop the certificate must not trip
  // on. The re-cost gap then decides (and a 2-step nudge in P_r is cheap,
  // so the verdict is fresh).
  int i = -1, j = -1;
  ASSERT_TRUE(atlas->assign(Ratio{7, 2, 1}, i, j));
  atlas->insert(i, j, solvedCell(someOtherShape(adopted), 1.0));

  const DriftVerdict verdict = monitor.evaluate(Ratio{7, 2, 1});
  EXPECT_EQ(verdict.reason,
            verdict.stale ? DriftReason::kRecostGap : DriftReason::kRecostOk);
  EXPECT_TRUE(verdict.cellChanged);
}

TEST(DriftMonitorTest, OutOfRangeEstimateFallsBackToTheRecostGap) {
  auto atlas = emptyAtlas();
  DriftOptions options = optionsWithGap(5.0);
  options.atlas = atlas;
  DriftMonitor monitor(options);
  adoptOptimalAt(monitor, Ratio{2, 1, 1});

  // 50:20:1 lies beyond the grid span: no cell, straight to the re-cost.
  const DriftVerdict verdict = monitor.evaluate(Ratio{50, 20, 1});
  EXPECT_TRUE(verdict.stale);
  EXPECT_EQ(verdict.reason, DriftReason::kRecostGap);
  EXPECT_EQ(verdict.cellI, -1);
}

}  // namespace
}  // namespace pushpart
