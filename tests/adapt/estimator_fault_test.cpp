// Satellite of DESIGN.md §16: a ClusterFaultInjector throttle window crossed
// with the estimator's EWMA decay. A 2x SlowNode window on node R must push
// the drift verdict stale within a few phases of the throttle engaging (the
// EWMA needs time to believe the slowdown), and the verdict must relax back
// to fresh within a bounded number of phases of the window closing — without
// any replan, purely because the estimate decays home and the frozen plan
// becomes near-optimal again.
#include <gtest/gtest.h>

#include "adapt/drift.hpp"
#include "adapt/estimator.hpp"
#include "model/optimal.hpp"
#include "sim/fault.hpp"
#include "support/deadline.hpp"

namespace pushpart {
namespace {

constexpr double kWindowBegin = 10.0;
constexpr double kWindowEnd = 30.0;
constexpr int kPhases = 60;
// EWMA decay bounds: alpha = 0.3 shrinks the estimate's distance to the new
// truth by 0.7 per phase, so a 2x step is believed (or forgotten) within a
// handful of phases. The bounds leave slack for count rounding.
constexpr int kStaleWithinPhases = 6;
constexpr int kFreshWithinPhases = 12;

TEST(EstimatorFaultTest, ThrottleWindowCrossesThresholdAndRecovers) {
  ClusterFaultPlan plan;
  plan.slowNodes.push_back(SlowNode{/*node=*/0, kWindowBegin, kWindowEnd,
                                    /*factor=*/2.0});
  const ClusterFaultInjector injector(plan, kNumProcs);

  // Absolute node speeds in procSlot order (R, S, P): canonical 5.33:2:1.
  const std::array<double, kNumProcs> baseSpeed = {3.0, 1.5, 8.0};
  const Ratio plannedRatio{baseSpeed[procSlot(Proc::P)] / 1.5,
                           baseSpeed[procSlot(Proc::R)] / 1.5, 1.0};

  DriftOptions driftOptions;
  driftOptions.n = 96;
  driftOptions.staleGapPct = 5.0;
  DriftMonitor monitor(driftOptions);
  Machine machine = driftOptions.machine;
  machine.ratio = plannedRatio;
  const RankedCandidate best =
      selectOptimal(driftOptions.algo, driftOptions.n, machine,
                    driftOptions.topology, driftOptions.star);
  monitor.adopt(best.shape, plannedRatio, best.voc);

  RatioEstimator estimator;
  FakeClock clock;
  int firstStalePhase = -1;
  int freshAgainPhase = -1;
  bool staleAfterRecovery = false;

  for (int phase = 0; phase < kPhases; ++phase) {
    clock.advance(1.0);
    const double now = clock.nowSeconds();
    PhaseSample sample;
    sample.at = now;
    for (Proc x : kAllProcs) {
      const double speed =
          baseSpeed[procSlot(x)] / injector.slowFactorAt(procIndex(x), now);
      sample.node(x).proc = x;
      sample.node(x).units = static_cast<std::int64_t>(speed * 1e6);
      sample.node(x).busySeconds = 1.0;
    }
    estimator.observe(sample);

    const RatioEstimate estimate = estimator.estimate();
    ASSERT_TRUE(estimate.warmedUp);
    // The throttle never reorders the nodes (R at 1.5 ties S, and the
    // procIndex tie-break keeps R ahead), so the canonical components are
    // the logical role speeds and the one-argument overload applies.
    ASSERT_EQ(estimate.order[0], Proc::P);
    const DriftVerdict verdict = monitor.evaluate(estimate.canonical());

    if (now < kWindowBegin) {
      EXPECT_FALSE(verdict.stale) << "phase " << phase << " before window";
    } else if (verdict.stale && firstStalePhase < 0) {
      firstStalePhase = phase;
    } else if (!verdict.stale && firstStalePhase >= 0 &&
               now > kWindowEnd && freshAgainPhase < 0) {
      freshAgainPhase = phase;
    } else if (verdict.stale && freshAgainPhase >= 0) {
      staleAfterRecovery = true;
    }
  }

  // Stale within the decay bound of the throttle engaging...
  ASSERT_GE(firstStalePhase, 0) << "the 2x window never read as stale";
  EXPECT_LE(firstStalePhase,
            static_cast<int>(kWindowBegin) + kStaleWithinPhases);
  // ...and fresh again within the decay bound of it releasing, for good.
  ASSERT_GE(freshAgainPhase, 0) << "never recovered after the window";
  EXPECT_LE(freshAgainPhase,
            static_cast<int>(kWindowEnd) + kFreshWithinPhases);
  EXPECT_FALSE(staleAfterRecovery);

  // A throttle is slow progress, not absent progress: no demotions fired.
  EXPECT_EQ(estimator.counters().stallDemotions, 0u);
  EXPECT_EQ(estimator.counters().deathDemotions, 0u);
}

}  // namespace
}  // namespace pushpart
