#include "serve/oracle.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "model/optimal.hpp"

namespace pushpart {
namespace {

PlanRequest searchRequest(int n = 40, int runs = 2) {
  PlanRequest req;
  req.n = n;
  req.ratio = Ratio{5, 2, 1};
  req.algo = Algo::kSCO;
  req.tier = PlanTier::kSearch;
  req.searchRuns = runs;
  req.searchSeed = 11;
  return req;
}

/// Bit-for-bit equality on every field (PlanAnswer's defaulted == compares
/// doubles exactly, which is precisely what the cache must guarantee).
void expectIdentical(const PlanAnswer& a, const PlanAnswer& b) {
  EXPECT_TRUE(a == b)
      << "answers differ: exec " << a.model.execSeconds << " vs "
      << b.model.execSeconds << ", solve " << a.solveSeconds << " vs "
      << b.solveSeconds;
}

TEST(OracleTest, CacheHitIsBitIdenticalToColdComputation) {
  Oracle oracle;
  const PlanRequest req = searchRequest();
  const PlanResponse cold = oracle.plan(req);
  EXPECT_FALSE(cold.cacheHit);
  const PlanResponse hot = oracle.plan(req);
  EXPECT_TRUE(hot.cacheHit);
  expectIdentical(cold.answer, hot.answer);
  EXPECT_EQ(cold.key, hot.key);
}

TEST(OracleTest, EquivalentRequestsShareTheEntry) {
  Oracle oracle;
  PlanRequest a = searchRequest();
  a.ratio = Ratio{5, 2, 1};
  PlanRequest b = searchRequest();
  b.ratio = Ratio{15, 3, 6};  // scaled by 3, R/S labels swapped
  const PlanResponse cold = oracle.plan(a);
  const PlanResponse hot = oracle.plan(b);
  EXPECT_TRUE(hot.cacheHit);
  expectIdentical(cold.answer, hot.answer);
  EXPECT_EQ(oracle.stats().cache.misses, 1u);
}

TEST(OracleTest, FastTierMatchesSelectOptimal) {
  Oracle oracle;
  PlanRequest req;
  req.n = 90;
  req.ratio = Ratio{10, 1, 1};
  req.algo = Algo::kSCO;
  req.tier = PlanTier::kFast;
  const PlanResponse r = oracle.plan(req);
  Machine machine = oracle.options().machine;
  machine.ratio = canonicalize(req).request.ratio;
  const RankedCandidate direct = selectOptimal(req.algo, req.n, machine);
  EXPECT_EQ(r.answer.shape, direct.shape);
  EXPECT_EQ(r.answer.voc, direct.voc);
  EXPECT_EQ(r.answer.model.execSeconds, direct.model.execSeconds);
  EXPECT_EQ(r.answer.tier, PlanTier::kFast);
  EXPECT_EQ(r.answer.searchRuns, 0);
}

TEST(OracleTest, SearchTierRunsTheBudgetAndReportsEvidence) {
  Oracle oracle;
  const PlanRequest req = searchRequest(36, 3);
  const PlanResponse r = oracle.plan(req);
  EXPECT_EQ(r.answer.tier, PlanTier::kSearch);
  EXPECT_EQ(r.answer.searchRuns, 3);
  EXPECT_EQ(r.answer.searchCompleted, 3);
  EXPECT_GT(r.answer.searchBestVoc, 0);
  EXPECT_GT(r.answer.searchBestExecSeconds, 0.0);
}

TEST(OracleTest, SameSeedIsDeterministicAcrossOracles) {
  Oracle first;
  Oracle second;
  const PlanRequest req = searchRequest(32, 4);
  PlanAnswer a = first.solveUncached(req);
  PlanAnswer b = second.solveUncached(req);
  // Wall time of the two solves legitimately differs; everything the solve
  // *computed* must not.
  a.solveSeconds = 0.0;
  b.solveSeconds = 0.0;
  expectIdentical(a, b);
}

// Acceptance criterion: >= 8 concurrent identical requests, exactly one
// underlying solve. Deterministic via the onSolveStart hook — the solving
// thread blocks until the other 7 have coalesced onto its in-flight entry.
TEST(OracleTest, ConcurrentIdenticalRequestsTriggerOneSolve) {
  constexpr int kThreads = 8;
  std::atomic<Oracle*> oraclePtr{nullptr};
  std::atomic<int> solveCalls{0};
  OracleOptions options;
  options.onSolveStart = [&](const CanonicalKey&) {
    solveCalls.fetch_add(1);
    while (oraclePtr.load()->stats().cache.coalesced <
           static_cast<std::uint64_t>(kThreads - 1))
      std::this_thread::yield();
  };
  Oracle oracle(options);
  oraclePtr.store(&oracle);

  const PlanRequest req = searchRequest(30, 2);
  std::vector<PlanResponse> responses(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t]() {
      responses[static_cast<std::size_t>(t)] = oracle.plan(req);
    });
  for (auto& th : pool) th.join();

  EXPECT_EQ(solveCalls.load(), 1);
  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_GE(stats.cache.coalesced, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.tierBSolves.count, 1u);
  for (int t = 1; t < kThreads; ++t)
    expectIdentical(responses[0].answer,
                    responses[static_cast<std::size_t>(t)].answer);
}

TEST(OracleTest, DegenerateRequestThrowsAndIsNeverCached) {
  Oracle oracle;
  PlanRequest bad;
  bad.n = 1;  // one cell, three processors: no feasible candidate
  EXPECT_THROW(oracle.plan(bad), std::runtime_error);
  EXPECT_THROW(oracle.plan(bad), std::runtime_error);  // retried, not poisoned
  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.cache.misses, 2u);
  EXPECT_EQ(stats.cache.entries, 0u);

  PlanRequest malformed;
  malformed.n = -5;
  EXPECT_THROW(oracle.plan(malformed), std::invalid_argument);
}

TEST(OracleTest, EvictionsAccrueUnderTinyCache) {
  OracleOptions options;
  options.cacheCapacity = 2;
  options.cacheShards = 1;
  Oracle oracle(options);
  for (int n : {24, 30, 36, 42}) {
    PlanRequest req;
    req.n = n;
    oracle.plan(req);
  }
  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.cache.misses, 4u);
  EXPECT_GE(stats.cache.evictions, 2u);
  EXPECT_LE(stats.cache.entries, 2u);
}

TEST(OracleTest, HitLatencyHistogramFills) {
  Oracle oracle;
  PlanRequest req;
  req.n = 48;
  oracle.plan(req);
  for (int i = 0; i < 10; ++i) oracle.plan(req);
  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.hitLatency.count, 10u);
  EXPECT_GT(stats.hitLatency.p50, 0.0);
  EXPECT_LE(stats.hitLatency.p50, stats.hitLatency.p99);
  EXPECT_EQ(stats.tierASolves.count, 1u);
}

TEST(OracleTest, EveryAnswerCarriesANonNegativeOptimalityGap) {
  Oracle oracle;
  for (int n : {40, 90}) {
    PlanRequest req;
    req.n = n;
    req.ratio = Ratio{7, 3, 1};
    req.tier = PlanTier::kFast;
    const PlanResponse r = oracle.plan(req);
    EXPECT_GE(r.answer.optimalityGapPct, 0.0);
    EXPECT_FALSE(r.answer.familyCandidate.empty());
    EXPECT_EQ(r.answer.family, FamilyId::kCanonical);
  }
}

TEST(OracleTest, ExtendedFamiliesNeverLoseToCanonicalServing) {
  OracleOptions canonicalOnly;
  Oracle base(canonicalOnly);
  OracleOptions extended;
  extended.families = FamilySet::all();
  Oracle fam(extended);
  // R_r = 3 cells are where layered/hierarchical candidates strictly beat
  // the rounded canonical constructions at n = 90 (see E19).
  for (double pr : {5.0, 7.0, 12.0}) {
    PlanRequest req;
    req.n = 90;
    req.ratio = Ratio{pr, 3, 1};
    req.tier = PlanTier::kFast;
    const PlanResponse a = base.plan(req);
    const PlanResponse b = fam.plan(req);
    EXPECT_LE(b.answer.model.execSeconds, a.answer.model.execSeconds);
    EXPECT_GE(b.answer.optimalityGapPct, 0.0);
    EXPECT_LE(b.answer.optimalityGapPct, a.answer.optimalityGapPct);
    // The canonical shape field survives as the best six-shape answer even
    // when an extended candidate is served.
    EXPECT_EQ(b.answer.shape, a.answer.shape);
    if (b.answer.family != FamilyId::kCanonical)
      EXPECT_LT(b.answer.voc, a.answer.voc);
  }
}

}  // namespace
}  // namespace pushpart
