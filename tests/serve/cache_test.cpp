#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pushpart {
namespace {

CanonicalKey keyFor(int n) {
  PlanRequest req;
  req.n = n;
  return canonicalize(req);
}

PlanAnswer answerWith(double exec) {
  PlanAnswer a;
  a.model.execSeconds = exec;
  a.voc = 42;
  return a;
}

TEST(PlanCacheTest, MissThenHitReturnsStoredAnswer) {
  PlanCache cache(8, 2);
  int solves = 0;
  const auto solve = [&]() {
    ++solves;
    return answerWith(1.5);
  };
  const auto first = cache.getOrCompute(keyFor(10), solve);
  EXPECT_FALSE(first.hit);
  EXPECT_FALSE(first.coalesced);
  const auto second = cache.getOrCompute(keyFor(10), solve);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(solves, 1);
  EXPECT_EQ(second.answer, first.answer);
  const auto c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.entries, 1u);
}

TEST(PlanCacheTest, RejectsZeroCapacityOrShards) {
  EXPECT_THROW(PlanCache(0, 1), std::invalid_argument);
  EXPECT_THROW(PlanCache(8, 0), std::invalid_argument);
}

TEST(PlanCacheTest, LruEvictsColdestAndCounts) {
  PlanCache cache(2, 1);  // one shard so eviction order is global
  int solves = 0;
  const auto solve = [&]() { return answerWith(++solves); };
  cache.getOrCompute(keyFor(1), solve);  // LRU: [1]
  cache.getOrCompute(keyFor(2), solve);  // LRU: [2, 1]
  // Touch 1 so 2 becomes the eviction victim.
  EXPECT_TRUE(cache.getOrCompute(keyFor(1), solve).hit);  // LRU: [1, 2]
  cache.getOrCompute(keyFor(3), solve);                   // evicts 2
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_TRUE(cache.getOrCompute(keyFor(1), solve).hit);
  EXPECT_FALSE(cache.getOrCompute(keyFor(2), solve).hit);  // was evicted
  EXPECT_EQ(cache.counters().entries, 2u);
}

// The drift-adaptation contract (DESIGN.md §16): once a key is invalidated,
// the stale answer must never be served again — the next request for the
// same key re-solves and sees the new answer, and the drop is counted.
TEST(PlanCacheTest, InvalidatedEntryIsNeverReServed) {
  PlanCache cache(8, 2);
  const CanonicalKey key = keyFor(33);
  cache.getOrCompute(key, []() { return answerWith(1.0); });
  EXPECT_TRUE(cache.getOrCompute(key, []() { return answerWith(1.0); }).hit);

  EXPECT_TRUE(cache.invalidate(key));
  EXPECT_EQ(cache.counters().staleInvalidations, 1u);
  EXPECT_EQ(cache.counters().entries, 0u);

  // The stale answer is gone: the same key misses and re-solves fresh.
  const auto fresh = cache.getOrCompute(key, []() { return answerWith(9.0); });
  EXPECT_FALSE(fresh.hit);
  EXPECT_EQ(fresh.answer.model.execSeconds, 9.0);
  EXPECT_TRUE(cache.getOrCompute(key, []() { return answerWith(9.0); }).hit);

  // Invalidating an absent key is a no-op, not a count.
  EXPECT_FALSE(cache.invalidate(keyFor(99)));
  EXPECT_EQ(cache.counters().staleInvalidations, 1u);
}

TEST(PlanCacheTest, ClearDropsEntriesButKeepsCounters) {
  PlanCache cache(8, 2);
  const auto solve = [&]() { return answerWith(1.0); };
  cache.getOrCompute(keyFor(1), solve);
  cache.clear();
  EXPECT_EQ(cache.counters().entries, 0u);
  EXPECT_FALSE(cache.getOrCompute(keyFor(1), solve).hit);
  EXPECT_EQ(cache.counters().misses, 2u);
}

TEST(PlanCacheTest, FailedSolveIsNotCachedAndRethrows) {
  PlanCache cache(8, 2);
  EXPECT_THROW(cache.getOrCompute(keyFor(1),
                                  []() -> PlanAnswer {
                                    throw std::runtime_error("solver broke");
                                  }),
               std::runtime_error);
  EXPECT_EQ(cache.counters().entries, 0u);
  // The key is retried, not poisoned.
  const auto retry =
      cache.getOrCompute(keyFor(1), []() { return answerWith(2.0); });
  EXPECT_FALSE(retry.hit);
  EXPECT_EQ(retry.answer.model.execSeconds, 2.0);
}

// The acceptance-criterion test: >= 8 threads requesting one key while the
// solve is in flight must trigger exactly one underlying solve, with every
// other thread coalescing onto it. Deterministic: the solver blocks until
// the cache has registered 7 coalesced waiters, so no waiter can miss the
// in-flight window.
TEST(PlanCacheTest, ConcurrentIdenticalRequestsCoalesceOntoOneSolve) {
  constexpr int kThreads = 8;
  PlanCache cache(8, 2);
  std::atomic<int> solves{0};
  const CanonicalKey key = keyFor(77);

  const auto solve = [&]() {
    solves.fetch_add(1);
    while (cache.counters().coalesced < kThreads - 1)
      std::this_thread::yield();
    return answerWith(3.25);
  };

  std::vector<PlanCache::Outcome> outcomes(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t]() { outcomes[static_cast<std::size_t>(t)] =
                                     cache.getOrCompute(key, solve); });
  for (auto& th : pool) th.join();

  EXPECT_EQ(solves.load(), 1);
  const auto c = cache.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.coalesced, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(c.hits, 0u);
  int owners = 0, waiters = 0;
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.answer, answerWith(3.25));
    if (o.coalesced) {
      ++waiters;
    } else if (!o.hit) {
      ++owners;
    }
  }
  EXPECT_EQ(owners, 1);
  EXPECT_EQ(waiters, kThreads - 1);
}

TEST(PlanCacheTest, CoalescedWaitersSeeTheSolversException) {
  PlanCache cache(8, 2);
  const CanonicalKey key = keyFor(5);
  std::atomic<bool> waiterFailed{false};

  std::thread owner([&]() {
    try {
      cache.getOrCompute(key, [&]() -> PlanAnswer {
        while (cache.counters().coalesced < 1) std::this_thread::yield();
        throw std::runtime_error("solver broke");
      });
    } catch (const std::runtime_error&) {
    }
  });
  std::thread waiter([&]() {
    try {
      cache.getOrCompute(key, []() { return PlanAnswer{}; });
    } catch (const std::runtime_error&) {
      waiterFailed = true;
    }
  });
  owner.join();
  waiter.join();
  // Either the waiter coalesced (and saw the exception) or it arrived after
  // the failure was cleaned up and solved successfully itself; both leave
  // the cache consistent. The coalesced path is the one under test.
  if (cache.counters().coalesced == 1) {
    EXPECT_TRUE(waiterFailed.load());
  }
}

// Contention stress: many threads hammer a keyspace larger than the cache,
// so hits, misses, coalesced solves and shard evictions all race against
// each other. The assertions are the conservation laws that must survive
// any interleaving; TSan (the CI job runs this suite) covers the data-race
// side.
TEST(PlanCacheTest, EvictionAndCoalescingStayConsistentUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  constexpr std::size_t kCapacity = 8;  // far below the 32-key working set
  PlanCache cache(kCapacity, 4);
  std::atomic<int> solves{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t]() {
      // Deterministic per-thread walk over an overlapping keyspace; the
      // stride keeps threads colliding on the same keys at offset phases.
      for (int op = 0; op < kOpsPerThread; ++op) {
        const int key = 1 + (op * (t + 1) + t * 7) % 32;
        const auto outcome = cache.getOrCompute(keyFor(key), [&]() {
          solves.fetch_add(1);
          return answerWith(static_cast<double>(key));
        });
        // Whatever the path — hit, miss or coalesced wait — the answer must
        // be the one computed for this key, never a neighbour's.
        EXPECT_EQ(outcome.answer.model.execSeconds,
                  static_cast<double>(key));
      }
    });
  for (auto& th : pool) th.join();

  const auto c = cache.counters();
  // Every operation is exactly one of hit / miss / coalesced.
  EXPECT_EQ(c.hits + c.misses + c.coalesced,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  // Each miss ran the solver once; coalesced waiters never did.
  EXPECT_EQ(c.misses, static_cast<std::uint64_t>(solves.load()));
  // The working set exceeds capacity, so shards must have evicted, and the
  // resident count must respect the configured capacity.
  EXPECT_GT(c.evictions, 0u);
  EXPECT_LE(c.entries, kCapacity);
  EXPECT_EQ(c.entries + c.evictions, c.misses);
}

TEST(PlanCacheTest, DistinctKeysDoNotCoalesce) {
  PlanCache cache(16, 4);
  std::atomic<int> solves{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 6; ++t)
    pool.emplace_back([&, t]() {
      cache.getOrCompute(keyFor(100 + t), [&]() {
        solves.fetch_add(1);
        return PlanAnswer{};
      });
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(solves.load(), 6);
  EXPECT_EQ(cache.counters().coalesced, 0u);
}

}  // namespace
}  // namespace pushpart
