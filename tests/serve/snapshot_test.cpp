#include "serve/snapshot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/oracle.hpp"

namespace pushpart {
namespace {

CanonicalKey keyFor(int n, PlanTier tier = PlanTier::kFast) {
  PlanRequest req;
  req.n = n;
  req.tier = tier;
  if (tier == PlanTier::kSearch) req.searchRuns = 3;
  return canonicalize(req);
}

/// A full-fidelity answer exercising every serialized field, including
/// doubles that don't round-trip through shorter formats.
PlanAnswer richAnswer(int salt) {
  PlanAnswer a;
  a.shape = static_cast<CandidateShape>(salt % kNumCandidates);
  a.model.commSeconds = 0.1 + salt / 3.0;
  a.model.overlapSeconds = 0.01 * salt;
  a.model.compSeconds = 1.0 / (salt + 7);
  a.model.execSeconds = a.model.compSeconds + a.model.commSeconds;
  a.voc = 1000 + salt;
  a.optimalityGapPct = 1.25 * salt;
  a.family = static_cast<FamilyId>(salt % kNumFamilies);
  // Every third entry leaves the token empty to exercise the "-" encoding.
  if (salt % 3 != 0) a.familyCandidate = "layers:P/R-S:r";
  a.tier = salt % 2 == 0 ? PlanTier::kFast : PlanTier::kSearch;
  a.servedTier = a.tier;
  a.solveSeconds = 3.14159e-4 * (salt + 1);
  if (a.tier == PlanTier::kSearch) {
    a.searchRuns = 8;
    a.searchCompleted = 8;
    a.searchBestVoc = 900 + salt;
    a.searchBestExecSeconds = a.model.execSeconds * 1.125;
    a.searchConfirmedCandidate = true;
  }
  return a;
}

void populate(PlanCache& cache, int entries) {
  for (int i = 0; i < entries; ++i)
    cache.getOrCompute(keyFor(20 + i), [&]() { return richAnswer(i); });
}

TEST(SnapshotTest, SaveLoadSaveIsByteIdentical) {
  PlanCache cache(64, 4);
  populate(cache, 6);
  std::ostringstream first;
  EXPECT_EQ(savePlanCacheSnapshot(cache, first), 6u);

  PlanCache restored(64, 4);
  std::istringstream in(first.str());
  const SnapshotLoadReport report = loadPlanCacheSnapshot(restored, in);
  EXPECT_EQ(report.loaded, 6u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(restored.counters().entries, 6u);

  std::ostringstream second;
  savePlanCacheSnapshot(restored, second);
  // %.17g doubles + deterministic export order make the round trip exact.
  EXPECT_EQ(first.str(), second.str());
}

TEST(SnapshotTest, RestoredAnswersAreBitwiseEqual) {
  PlanCache cache(64, 4);
  populate(cache, 4);
  std::ostringstream os;
  savePlanCacheSnapshot(cache, os);
  PlanCache restored(64, 4);
  std::istringstream in(os.str());
  loadPlanCacheSnapshot(restored, in);
  for (int i = 0; i < 4; ++i) {
    const auto hit = restored.tryGet(keyFor(20 + i));
    ASSERT_TRUE(hit.has_value()) << "entry " << i << " missing after reload";
    EXPECT_EQ(*hit, richAnswer(i));
  }
}

TEST(SnapshotTest, FlippedByteSkipsThatEntryAndKeepsTheRest) {
  PlanCache cache(64, 4);
  populate(cache, 5);
  std::ostringstream os;
  savePlanCacheSnapshot(cache, os);
  std::string text = os.str();

  // Corrupt one digit inside the third entry line's payload.
  std::size_t pos = 0;
  for (int line = 0; line < 4; ++line) pos = text.find('\n', pos) + 1;
  const std::size_t digit = text.find_first_of("0123456789", pos + 20);
  ASSERT_NE(digit, std::string::npos);
  text[digit] = text[digit] == '9' ? '8' : '9';

  PlanCache restored(64, 4);
  std::istringstream in(text);
  const SnapshotLoadReport report = loadPlanCacheSnapshot(restored, in);
  EXPECT_EQ(report.loaded, 4u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(restored.counters().entries, 4u);
}

TEST(SnapshotTest, TruncatedFileKeepsThePrefixEntries) {
  PlanCache cache(64, 4);
  populate(cache, 5);
  std::ostringstream os;
  savePlanCacheSnapshot(cache, os);
  const std::string text = os.str();

  // Cut mid-way through the last entry line, as a crash mid-append would.
  const std::string cut = text.substr(0, text.size() - 25);
  PlanCache restored(64, 4);
  std::istringstream in(cut);
  const SnapshotLoadReport report = loadPlanCacheSnapshot(restored, in);
  EXPECT_EQ(report.loaded, 4u);
  EXPECT_EQ(report.skipped, 1u);
}

TEST(SnapshotTest, VersionMismatchRefusesTheWholeFile) {
  PlanCache restored(64, 4);
  std::istringstream future("pushpart-plancache v4\nentries 0\n");
  EXPECT_THROW(loadPlanCacheSnapshot(restored, future), std::runtime_error);
  std::istringstream garbage("not a snapshot at all\n");
  EXPECT_THROW(loadPlanCacheSnapshot(restored, garbage), std::runtime_error);
  EXPECT_EQ(restored.counters().entries, 0u);
}

TEST(SnapshotTest, TryLoadReportsVersionRefusalWithoutThrowing) {
  // The serving path (oracle warm start, CLI --snapshot) must survive a bad
  // snapshot file: the try-variant reports the refusal instead of throwing,
  // and the cache stays untouched.
  PlanCache restored(64, 4);
  std::istringstream future("pushpart-plancache v4\nentries 0\n");
  const SnapshotLoadReport report = tryLoadPlanCacheSnapshot(restored, future);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.versionRefused);
  EXPECT_NE(report.error.find("unsupported snapshot version"),
            std::string::npos);
  EXPECT_EQ(report.loaded, 0u);
  EXPECT_EQ(restored.counters().entries, 0u);
}

TEST(SnapshotTest, TryLoadReportsAnUnreadablePathWithoutThrowing) {
  PlanCache restored(64, 4);
  const SnapshotLoadReport report = tryLoadPlanCacheSnapshot(
      restored, testing::TempDir() + "/pushpart_no_such_file.snap");
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.versionRefused);  // unreadable, not wrong-version
  EXPECT_FALSE(report.error.empty());
  EXPECT_EQ(restored.counters().entries, 0u);
}

TEST(SnapshotTest, TryLoadOfAGoodSnapshotMatchesTheThrowingVariant) {
  PlanCache cache(64, 4);
  populate(cache, 3);
  std::ostringstream os;
  savePlanCacheSnapshot(cache, os);
  PlanCache restored(64, 4);
  std::istringstream in(os.str());
  const SnapshotLoadReport report = tryLoadPlanCacheSnapshot(restored, in);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.loaded, 3u);
  EXPECT_EQ(restored.counters().entries, 3u);
}

TEST(SnapshotTest, SegmentRoundTripsAnArbitraryEntrySubset) {
  // A rebalance segment is a complete snapshot document over a hand-picked
  // entry subset — loaded through the ordinary corruption-checked path.
  PlanCache cache(64, 4);
  populate(cache, 6);
  std::vector<PlanCache::SnapshotEntry> all = cache.exportEntries();
  ASSERT_EQ(all.size(), 6u);
  const std::vector<PlanCache::SnapshotEntry> subset(all.begin(),
                                                     all.begin() + 2);

  std::ostringstream wire;
  EXPECT_EQ(savePlanCacheSegment(subset, wire), 2u);
  PlanCache receiver(64, 4);
  std::istringstream in(wire.str());
  const SnapshotLoadReport report = loadPlanCacheSnapshot(receiver, in);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.loaded, 2u);
  EXPECT_EQ(receiver.counters().entries, 2u);
  for (const PlanCache::SnapshotEntry& entry : subset) {
    const auto exported = receiver.exportEntries();
    EXPECT_TRUE(std::any_of(exported.begin(), exported.end(),
                            [&](const PlanCache::SnapshotEntry& got) {
                              return got.key == entry.key &&
                                     got.answer == entry.answer;
                            }))
        << "segment entry " << entry.key << " missing after transfer";
  }
}

TEST(SnapshotTest, PathRoundTripViaAtomicRename) {
  const std::string path =
      testing::TempDir() + "/pushpart_snapshot_test.snap";
  PlanCache cache(64, 4);
  populate(cache, 3);
  EXPECT_EQ(savePlanCacheSnapshot(cache, path), 3u);
  PlanCache restored(64, 4);
  const SnapshotLoadReport report = loadPlanCacheSnapshot(restored, path);
  EXPECT_EQ(report.loaded, 3u);
  EXPECT_EQ(report.skipped, 0u);
  std::remove(path.c_str());
  EXPECT_THROW(loadPlanCacheSnapshot(restored, path), std::runtime_error);
}

// End to end through the Oracle: a snapshot-warmed oracle serves its first
// request for a restored key as a cache hit, bit-identical to the answer
// the original oracle computed cold.
TEST(SnapshotTest, WarmedOracleServesRestoredKeysAsHits) {
  const std::string path = testing::TempDir() + "/pushpart_oracle_warm.snap";
  PlanRequest req;
  req.n = 40;
  req.tier = PlanTier::kSearch;
  req.searchRuns = 2;

  Oracle original(OracleOptions{});
  const PlanResponse cold = original.plan(req);
  EXPECT_FALSE(cold.cacheHit);
  ASSERT_GT(original.saveSnapshot(path), 0u);

  Oracle restarted(OracleOptions{});
  const SnapshotLoadReport report = restarted.loadSnapshot(path);
  EXPECT_GE(report.loaded, 1u);
  const PlanResponse warm = restarted.plan(req);
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(warm.answer, cold.answer);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pushpart
