// The atlas serving tier through the Oracle: certified lookups, the
// fall-back ladder to live search, source accounting, and snapshot
// round-tripping of atlas provenance.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "atlas/builder.hpp"
#include "serve/oracle.hpp"

namespace pushpart {
namespace {

constexpr int kBuildN = 48;

std::shared_ptr<PlanAtlas> servingAtlas() {
  AtlasBuildOptions options;
  options.spec.prMin = 1.0;
  options.spec.prMax = 12.0;
  options.spec.prSteps = 12;
  options.spec.rrMin = 1.0;
  options.spec.rrMax = 4.0;
  options.spec.rrSteps = 4;
  options.info.n = kBuildN;
  options.threads = 1;
  return buildAtlas(options);
}

OracleOptions atlasOptions(std::shared_ptr<PlanAtlas> atlas) {
  OracleOptions options;
  options.atlas = std::move(atlas);
  options.atlasPrefetch = false;  // keep the test single-threaded
  return options;
}

PlanRequest searchRequest(const Ratio& ratio) {
  PlanRequest req;
  req.n = kBuildN;
  req.ratio = ratio;
  req.tier = PlanTier::kSearch;
  req.searchRuns = 2;
  return req;
}

/// A solved, off-boundary cell of `atlas` — the kind a lookup serves.
std::pair<int, int> servableCell(const PlanAtlas& atlas) {
  const AtlasGridSpec& spec = atlas.spec();
  for (int i = 0; i < spec.prSteps; ++i)
    for (int j = 0; j < spec.rrSteps; ++j) {
      if (!spec.validCell(i, j)) continue;
      const auto cell = atlas.cell(i, j);
      if (cell && cell->solved && !cell->boundary) return {i, j};
    }
  ADD_FAILURE() << "atlas has no servable cell";
  return {-1, -1};
}

TEST(AtlasServeTest, SourcesLineFormatIsPinned) {
  // Dashboards and the CI smoke grep parse this line; changing it is a
  // breaking interface change, not a cosmetic one.
  OracleStats s;
  s.sourceAtlas = 1;
  s.sourceCache = 2;
  s.sourceTierA = 3;
  s.sourceTierB = 4;
  s.shed = 5;
  EXPECT_EQ(s.sourcesLine(),
            "sources: atlas=1 cache=2 tier-A=3 tier-B=4 shed=5");
}

TEST(AtlasServeTest, CertifiedLookupServesAndCaches) {
  const auto atlas = servingAtlas();
  const auto [ci, cj] = servableCell(*atlas);
  ASSERT_GE(ci, 0);
  Oracle oracle(atlasOptions(atlas));
  const PlanRequest req = searchRequest(atlas->spec().ratioAt(ci, cj));

  const PlanResponse cold = oracle.plan(req);
  EXPECT_FALSE(cold.cacheHit);
  ASSERT_TRUE(cold.answer.atlasServed);
  EXPECT_EQ(cold.answer.atlasI, ci);
  EXPECT_EQ(cold.answer.atlasJ, cj);
  EXPECT_LE(cold.answer.atlasCertGapPct, oracle.options().atlasGapPct);
  EXPECT_TRUE(cold.answer.fullFidelity());
  EXPECT_EQ(cold.answer.shape, atlas->cell(ci, cj)->shape);

  // Atlas-certified answers are full fidelity, so they are cacheable; the
  // replay is bit-identical, provenance included.
  const PlanResponse warm = oracle.plan(req);
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(warm.answer, cold.answer);

  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.atlasServed, 1u);
  EXPECT_EQ(stats.sourceAtlas, 1u);
  EXPECT_EQ(stats.sourceCache, 1u);
  EXPECT_EQ(stats.sourceTierB, 0u);
}

TEST(AtlasServeTest, OutOfSpanRatioFallsBackToLiveSearch) {
  Oracle oracle(atlasOptions(servingAtlas()));
  const PlanResponse response =
      oracle.plan(searchRequest(Ratio{50, 1, 1}));  // beyond prMax = 12
  EXPECT_FALSE(response.answer.atlasServed);
  EXPECT_EQ(response.answer.servedTier, PlanTier::kSearch);
  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.atlasMisses, 1u);
  EXPECT_EQ(stats.sourceTierB, 1u);
  EXPECT_EQ(stats.sourceAtlas, 0u);
}

TEST(AtlasServeTest, BoundaryCellsFallBackToLiveSearch) {
  const auto atlas = servingAtlas();
  const auto boundaries = atlas->boundaryCells();
  if (boundaries.empty()) GTEST_SKIP() << "atlas grew no crossover front";
  const auto [bi, bj] = boundaries.front();
  Oracle oracle(atlasOptions(atlas));
  const PlanResponse response =
      oracle.plan(searchRequest(atlas->spec().ratioAt(bi, bj)));
  EXPECT_FALSE(response.answer.atlasServed);
  EXPECT_EQ(response.answer.servedTier, PlanTier::kSearch);
  EXPECT_TRUE(response.answer.fullFidelity());
  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.atlasMisses, 1u);
  EXPECT_EQ(stats.atlasCells.boundary, 1u);
}

TEST(AtlasServeTest, FastTierNeverConsultsTheAtlas) {
  const auto atlas = servingAtlas();
  Oracle oracle(atlasOptions(atlas));
  PlanRequest req = searchRequest(atlas->spec().ratioAt(4, 0));
  req.tier = PlanTier::kFast;
  req.searchRuns = 0;
  const PlanResponse response = oracle.plan(req);
  EXPECT_FALSE(response.answer.atlasServed);
  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.sourceTierA, 1u);
  EXPECT_EQ(stats.atlasCells.lookups, 0u)
      << "a fast-tier request reached the atlas";
}

TEST(AtlasServeTest, SnapshotRoundTripsAtlasProvenance) {
  const std::string path =
      ::testing::TempDir() + "/pushpart_atlas_warm.snap";
  const auto atlas = servingAtlas();
  const auto [ci, cj] = servableCell(*atlas);
  const PlanRequest req = searchRequest(atlas->spec().ratioAt(ci, cj));

  Oracle original(atlasOptions(atlas));
  const PlanResponse cold = original.plan(req);
  ASSERT_TRUE(cold.answer.atlasServed);
  ASSERT_GT(original.saveSnapshot(path), 0u);

  // The restarted oracle has NO atlas: the provenance must come back from
  // the snapshot, not from a fresh lookup.
  Oracle restarted{OracleOptions{}};
  const SnapshotLoadReport report = restarted.loadSnapshot(path);
  EXPECT_GE(report.loaded, 1u);
  const PlanResponse warm = restarted.plan(req);
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(warm.answer, cold.answer);
  EXPECT_TRUE(warm.answer.atlasServed);
  EXPECT_EQ(warm.answer.atlasI, ci);
  std::remove(path.c_str());
}

TEST(AtlasServeTest, SourceBreakdownSumsToEveryCall) {
  // The invariant that keeps the atlas tier from masking shed accounting:
  // every plan() call lands in exactly one source bucket (with shed).
  const auto atlas = servingAtlas();
  const auto [ci, cj] = servableCell(*atlas);
  Oracle oracle(atlasOptions(atlas));
  std::uint64_t calls = 0;
  const Ratio ratios[] = {atlas->spec().ratioAt(ci, cj),  // atlas
                          atlas->spec().ratioAt(ci, cj),  // cache hit
                          Ratio{50, 1, 1},                // tier B
                          Ratio{40, 2, 1}};               // tier B
  for (const Ratio& r : ratios) {
    oracle.plan(searchRequest(r));
    ++calls;
  }
  PlanRequest fast = searchRequest(atlas->spec().ratioAt(ci, cj));
  fast.tier = PlanTier::kFast;
  fast.searchRuns = 0;
  oracle.plan(fast);
  ++calls;

  const OracleStats s = oracle.stats();
  EXPECT_EQ(s.sourceAtlas + s.sourceCache + s.sourceTierA + s.sourceTierB +
                s.shed,
            calls);
  EXPECT_EQ(s.sourceAtlas, 1u);
  EXPECT_EQ(s.sourceCache, 1u);
  EXPECT_EQ(s.sourceTierA, 1u);
  EXPECT_EQ(s.sourceTierB, 2u);
  EXPECT_EQ(s.shed, 0u);
}

}  // namespace
}  // namespace pushpart
