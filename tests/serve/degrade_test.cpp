// The oracle's degradation ladder (DESIGN.md §12), driven deterministically:
// deadlines on a FakeClock, mid-batch cancellation through the onSearchRun
// hook, and breaker cool-downs on an injected clock. No test here sleeps or
// asserts on wall time.
#include <gtest/gtest.h>

#include "serve/oracle.hpp"
#include "support/deadline.hpp"

namespace pushpart {
namespace {

PlanRequest searchRequest(int n = 24, int runs = 6) {
  PlanRequest req;
  req.n = n;
  req.tier = PlanTier::kSearch;
  req.searchRuns = runs;
  return req;
}

TEST(DegradeTest, ExpiredDeadlineServesClosedFormOnly) {
  Oracle oracle(OracleOptions{});
  FakeClock clock;
  PlanCallOptions call;
  call.deadline = Deadline::after(0.0, clock);  // spent before we start

  const PlanResponse r = oracle.plan(searchRequest(), call);
  EXPECT_FALSE(r.shed);
  EXPECT_EQ(r.answer.tier, PlanTier::kSearch);
  EXPECT_EQ(r.answer.servedTier, PlanTier::kFast);
  EXPECT_EQ(r.answer.degrade, DegradeReason::kNoTimeForSearch);
  EXPECT_FALSE(r.answer.fullFidelity());
  EXPECT_TRUE(r.deadlineExceeded);
  EXPECT_EQ(r.answer.searchCompleted, 0);
  // The closed-form recommendation is still real.
  EXPECT_GT(r.answer.voc, 0);

  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.noTimeForSearch, 1u);
  EXPECT_EQ(stats.cache.uncacheable, 1u);
}

TEST(DegradeTest, DegradedAnswerIsNotCachedAndRetriesAtFullQuality) {
  Oracle oracle(OracleOptions{});
  FakeClock clock;
  PlanCallOptions hurried;
  hurried.deadline = Deadline::after(0.0, clock);
  const PlanResponse degraded = oracle.plan(searchRequest(), hurried);
  EXPECT_FALSE(degraded.answer.fullFidelity());

  // The unhurried retry must not see the degraded answer: it re-solves cold
  // and gets (and caches) the full search-backed one.
  const PlanResponse full = oracle.plan(searchRequest());
  EXPECT_FALSE(full.cacheHit);
  EXPECT_TRUE(full.answer.fullFidelity());
  EXPECT_EQ(full.answer.servedTier, PlanTier::kSearch);
  EXPECT_EQ(full.answer.searchCompleted, full.answer.searchRuns);

  const PlanResponse hit = oracle.plan(searchRequest());
  EXPECT_TRUE(hit.cacheHit);
  EXPECT_EQ(hit.answer, full.answer);
}

TEST(DegradeTest, MidBatchCancellationServesTruncatedBestSoFar) {
  OracleOptions options;
  PlanCallOptions call;  // the hook cancels through this token's flag
  options.onSearchRun = [&call](const CanonicalKey&, int delivered) {
    if (delivered == 2) call.cancel.requestCancel();
  };
  Oracle oracle(options);

  const PlanResponse r = oracle.plan(searchRequest(24, 6), call);
  EXPECT_TRUE(r.answer.truncated);
  EXPECT_EQ(r.answer.degrade, DegradeReason::kTruncatedSearch);
  EXPECT_EQ(r.answer.servedTier, PlanTier::kSearch);
  EXPECT_FALSE(r.answer.fullFidelity());
  // Best-so-far: the delivered walks' evidence survived the cancellation.
  EXPECT_GE(r.answer.searchCompleted, 2);
  EXPECT_LT(r.answer.searchCompleted, r.answer.searchRuns);

  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.truncatedSearch, 1u);
  EXPECT_EQ(stats.cache.uncacheable, 1u);
}

TEST(DegradeTest, FullAnswerAfterDeadlineIsMarkedLateButCachedPristine) {
  FakeClock clock;
  OracleOptions options;
  // The solve itself "takes" 1 simulated second: the deadline expires while
  // the solver runs, after the request was admitted on time.
  options.onSolveStart = [&clock](const CanonicalKey&) { clock.advance(1.0); };
  Oracle oracle(options);

  PlanRequest req;  // tier A: the solver never polls the cancel token
  req.n = 24;
  PlanCallOptions call;
  call.deadline = Deadline::after(0.5, clock);
  const PlanResponse late = oracle.plan(req, call);
  EXPECT_TRUE(late.deadlineExceeded);
  EXPECT_EQ(late.answer.degrade, DegradeReason::kLate);
  EXPECT_FALSE(late.answer.fullFidelity());

  // The mark was response-local: an unhurried caller hits the cache and
  // sees the pristine full-fidelity answer.
  const PlanResponse hit = oracle.plan(req);
  EXPECT_TRUE(hit.cacheHit);
  EXPECT_EQ(hit.answer.degrade, DegradeReason::kNone);
  EXPECT_TRUE(hit.answer.fullFidelity());

  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.late, 1u);
  EXPECT_EQ(stats.degraded, 1u);
}

TEST(DegradeTest, ConsecutiveBustsTripTheBreakerAndProbeCloses) {
  FakeClock breakerClock;
  FakeClock deadlineClock;
  OracleOptions options;
  options.breaker.failureThreshold = 2;
  options.breaker.openSeconds = 10.0;
  options.breaker.clock = &breakerClock;
  Oracle oracle(options);

  // Two distinct tier-B requests bust their (already expired) deadlines:
  // each records a breaker failure.
  for (int i = 0; i < 2; ++i) {
    PlanCallOptions call;
    call.deadline = Deadline::after(0.0, deadlineClock);
    const PlanResponse r = oracle.plan(searchRequest(24 + i * 2), call);
    EXPECT_EQ(r.answer.degrade, DegradeReason::kNoTimeForSearch);
  }
  EXPECT_EQ(oracle.stats().breakerState, BreakerState::kOpen);
  EXPECT_EQ(oracle.stats().breaker.trips, 1u);

  // While open, even an unhurried tier-B request is short-circuited to the
  // closed-form rung — and, being degraded, not cached.
  const PlanResponse open = oracle.plan(searchRequest(40));
  EXPECT_EQ(open.answer.degrade, DegradeReason::kBreakerOpen);
  EXPECT_EQ(open.answer.servedTier, PlanTier::kFast);
  EXPECT_EQ(oracle.stats().breakerOpenServes, 1u);

  // After the cool-down one probe goes through; it completes in budget and
  // closes the breaker, restoring full tier-B service.
  breakerClock.advance(10.0);
  const PlanResponse probe = oracle.plan(searchRequest(40));
  EXPECT_TRUE(probe.answer.fullFidelity());
  EXPECT_EQ(probe.answer.servedTier, PlanTier::kSearch);
  EXPECT_EQ(oracle.stats().breakerState, BreakerState::kClosed);
  EXPECT_EQ(oracle.stats().breaker.probes, 1u);

  const PlanResponse after = oracle.plan(searchRequest(42));
  EXPECT_TRUE(after.answer.fullFidelity());
}

TEST(DegradeTest, TierARequestsIgnoreTheBreaker) {
  FakeClock clock;
  OracleOptions options;
  options.breaker.failureThreshold = 1;
  options.breaker.clock = &clock;
  Oracle oracle(options);

  PlanCallOptions spent;
  spent.deadline = Deadline::after(0.0, clock);
  oracle.plan(searchRequest(), spent);  // trips the breaker
  ASSERT_EQ(oracle.stats().breakerState, BreakerState::kOpen);

  PlanRequest fast;
  fast.n = 36;
  const PlanResponse r = oracle.plan(fast);
  EXPECT_TRUE(r.answer.fullFidelity());
  EXPECT_EQ(r.answer.servedTier, PlanTier::kFast);
}

TEST(DegradeTest, SolveUncachedBypassesBreakerAndDeadlines) {
  FakeClock clock;
  OracleOptions options;
  options.breaker.failureThreshold = 1;
  options.breaker.clock = &clock;
  Oracle oracle(options);
  PlanCallOptions spent;
  spent.deadline = Deadline::after(0.0, clock);
  oracle.plan(searchRequest(), spent);
  ASSERT_EQ(oracle.stats().breakerState, BreakerState::kOpen);

  const PlanAnswer cold = oracle.solveUncached(searchRequest());
  EXPECT_TRUE(cold.fullFidelity());
  EXPECT_EQ(cold.servedTier, PlanTier::kSearch);
  EXPECT_EQ(cold.searchCompleted, cold.searchRuns);
  // The cold path neither consulted nor reset the breaker.
  EXPECT_EQ(oracle.stats().breakerState, BreakerState::kOpen);
}

}  // namespace
}  // namespace pushpart
