#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pushpart {
namespace {

TEST(AdmissionTest, DisabledControllerAdmitsEverything) {
  AdmissionController admission(AdmissionOptions{});  // maxConcurrency == 0
  EXPECT_FALSE(admission.enabled());
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(admission.acquire(Deadline::unlimited()),
              AdmissionOutcome::kAdmitted);
  EXPECT_EQ(admission.counters().admitted, 5u);
}

TEST(AdmissionTest, RejectsNegativeOptions) {
  EXPECT_THROW(AdmissionController({-1, 4}), std::invalid_argument);
  EXPECT_THROW(AdmissionController({2, -1}), std::invalid_argument);
}

TEST(AdmissionTest, ShedsWhenConcurrencyAndQueueAreFull) {
  AdmissionController admission({/*maxConcurrency=*/2, /*maxQueue=*/0});
  EXPECT_EQ(admission.acquire({}), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(admission.acquire({}), AdmissionOutcome::kAdmitted);
  // No waiting room: the third arrival is shed immediately, even with an
  // unlimited deadline.
  EXPECT_EQ(admission.acquire({}), AdmissionOutcome::kQueueFull);
  const auto c = admission.counters();
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.shedQueueFull, 1u);
  EXPECT_EQ(c.inUse, 2);

  // A released slot admits again.
  admission.release();
  EXPECT_EQ(admission.acquire({}), AdmissionOutcome::kAdmitted);
  admission.release();
  admission.release();
  EXPECT_EQ(admission.counters().inUse, 0);
}

TEST(AdmissionTest, ExpiredDeadlineInTheQueueTimesOutImmediately) {
  AdmissionController admission({/*maxConcurrency=*/1, /*maxQueue=*/4});
  EXPECT_EQ(admission.acquire({}), AdmissionOutcome::kAdmitted);
  // Queue has room, but the deadline is already spent: the wait degenerates
  // to zero length and reports a timeout instead of blocking.
  FakeClock clock;
  EXPECT_EQ(admission.acquire(Deadline::after(0.0, clock)),
            AdmissionOutcome::kTimedOut);
  EXPECT_EQ(admission.counters().shedTimeout, 1u);
  EXPECT_EQ(admission.counters().queued, 0);
  admission.release();
}

TEST(AdmissionTest, PermitReleasesOnDestruction) {
  AdmissionController admission({/*maxConcurrency=*/1, /*maxQueue=*/0});
  {
    AdmissionController::Permit permit(admission, {});
    EXPECT_TRUE(permit.admitted());
    EXPECT_EQ(admission.counters().inUse, 1);
    AdmissionController::Permit second(admission, {});
    EXPECT_FALSE(second.admitted());
    EXPECT_EQ(second.outcome(), AdmissionOutcome::kQueueFull);
  }
  // Only the admitted permit released.
  EXPECT_EQ(admission.counters().inUse, 0);
  AdmissionController::Permit again(admission, {});
  EXPECT_TRUE(again.admitted());
}

BreakerOptions breakerOn(const Clock& clock, int threshold = 3,
                         double openSeconds = 10.0) {
  BreakerOptions options;
  options.failureThreshold = threshold;
  options.openSeconds = openSeconds;
  options.clock = &clock;
  return options;
}

TEST(CircuitBreakerTest, DisabledBreakerNeverTrips) {
  BreakerOptions options;
  options.failureThreshold = 0;
  CircuitBreaker breaker(options);
  EXPECT_FALSE(breaker.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(breaker.allowRequest());
    breaker.recordFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.counters().trips, 0u);
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndShortCircuits) {
  FakeClock clock;
  CircuitBreaker breaker(breakerOn(clock));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.allowRequest());
    breaker.recordFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().trips, 1u);
  EXPECT_FALSE(breaker.allowRequest());
  EXPECT_FALSE(breaker.allowRequest());
  EXPECT_EQ(breaker.counters().shortCircuited, 2u);
}

TEST(CircuitBreakerTest, SuccessBetweenFailuresResetsTheRun) {
  FakeClock clock;
  CircuitBreaker breaker(breakerOn(clock));
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(breaker.allowRequest());
    breaker.recordFailure();
    EXPECT_TRUE(breaker.allowRequest());
    breaker.recordFailure();
    EXPECT_TRUE(breaker.allowRequest());
    breaker.recordSuccess();  // one success short of the threshold each time
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.counters().trips, 0u);
}

TEST(CircuitBreakerTest, HalfOpensAfterCooldownAndClosesOnProbeSuccess) {
  FakeClock clock;
  CircuitBreaker breaker(breakerOn(clock, 2, 10.0));
  breaker.allowRequest();
  breaker.recordFailure();
  breaker.allowRequest();
  breaker.recordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  clock.advance(9.0);
  EXPECT_FALSE(breaker.allowRequest());  // still cooling down
  clock.advance(1.0);
  EXPECT_TRUE(breaker.allowRequest());  // the half-open probe
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.counters().probes, 1u);
  // While the probe is in flight, everyone else is short-circuited.
  EXPECT_FALSE(breaker.allowRequest());

  breaker.recordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allowRequest());
  breaker.recordSuccess();
}

TEST(CircuitBreakerTest, FailedProbeReopensForAnotherCooldown) {
  FakeClock clock;
  CircuitBreaker breaker(breakerOn(clock, 1, 5.0));
  breaker.allowRequest();
  breaker.recordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  clock.advance(5.0);
  EXPECT_TRUE(breaker.allowRequest());
  breaker.recordFailure();  // probe busted its deadline too
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().trips, 2u);
  EXPECT_FALSE(breaker.allowRequest());  // cool-down restarted
  clock.advance(5.0);
  EXPECT_TRUE(breaker.allowRequest());
  breaker.recordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

}  // namespace
}  // namespace pushpart
