#include "serve/request.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pushpart {
namespace {

TEST(CanonicalizeTest, ScaledRatiosShareOneKey) {
  PlanRequest a;
  a.n = 1000;
  a.ratio = Ratio{2, 1, 1};
  PlanRequest b = a;
  b.ratio = Ratio{6, 3, 3};
  EXPECT_EQ(canonicalize(a).text, canonicalize(b).text);
  EXPECT_EQ(canonicalize(a).hash, canonicalize(b).hash);
  EXPECT_EQ(canonicalize(b).request.ratio, (Ratio{2, 1, 1}));
}

TEST(CanonicalizeTest, RSwapFoldsOntoOneKey) {
  PlanRequest a;
  a.ratio = Ratio{5, 2, 1};
  PlanRequest b = a;
  b.ratio = Ratio{5, 1, 2};  // same machine, R and S labels exchanged
  EXPECT_EQ(canonicalize(a).text, canonicalize(b).text);
}

TEST(CanonicalizeTest, RSwapRelabelsStarHub) {
  PlanRequest req;
  req.ratio = Ratio{5, 1, 2};
  req.topology = Topology::kStar;
  req.star.hub = Proc::R;  // the speed-1 processor hosts the hub
  const CanonicalKey key = canonicalize(req);
  // After the swap the speed-1 processor is labeled S; the hub must follow.
  EXPECT_EQ(key.request.star.hub, Proc::S);
  EXPECT_EQ(key.request.ratio, (Ratio{5, 2, 1}));
}

TEST(CanonicalizeTest, HubIrrelevantOnFullyConnected) {
  PlanRequest a;
  a.star.hub = Proc::R;
  PlanRequest b;
  b.star.hub = Proc::S;
  EXPECT_EQ(canonicalize(a).text, canonicalize(b).text);
}

TEST(CanonicalizeTest, HubDistinguishesStarKeys) {
  PlanRequest a;
  a.topology = Topology::kStar;
  a.star.hub = Proc::P;
  PlanRequest b = a;
  b.star.hub = Proc::R;
  EXPECT_NE(canonicalize(a).text, canonicalize(b).text);
}

TEST(CanonicalizeTest, FastTierIgnoresSearchBudget) {
  PlanRequest a;
  a.tier = PlanTier::kFast;
  a.searchRuns = 100;
  a.searchSeed = 7;
  PlanRequest b;
  b.tier = PlanTier::kFast;
  b.searchRuns = 3;
  b.searchSeed = 99;
  EXPECT_EQ(canonicalize(a).text, canonicalize(b).text);
  EXPECT_EQ(canonicalize(a).request.searchRuns, 0);
}

TEST(CanonicalizeTest, SearchTierKeysOnBudgetAndSeed) {
  PlanRequest a;
  a.tier = PlanTier::kSearch;
  a.searchRuns = 8;
  PlanRequest b = a;
  b.searchRuns = 16;
  PlanRequest c = a;
  c.searchSeed = 2;
  EXPECT_NE(canonicalize(a).text, canonicalize(b).text);
  EXPECT_NE(canonicalize(a).text, canonicalize(c).text);
}

TEST(CanonicalizeTest, FloatNoiseCannotSplitEntries) {
  PlanRequest a;
  a.ratio = Ratio{10, 3, 3};  // 10/3 is not representable exactly
  PlanRequest b;
  b.ratio = Ratio{10.0 / 3.0, 1, 1};
  EXPECT_EQ(canonicalize(a).text, canonicalize(b).text);
}

TEST(CanonicalizeTest, MalformedRequestsRejected) {
  PlanRequest bad;
  bad.n = 0;
  EXPECT_THROW(canonicalize(bad), std::invalid_argument);

  bad = PlanRequest{};
  bad.ratio = Ratio{1, 2, 1};  // P not the fastest
  EXPECT_THROW(canonicalize(bad), std::invalid_argument);

  bad = PlanRequest{};
  bad.ratio = Ratio{2, -1, 1};
  EXPECT_THROW(canonicalize(bad), std::invalid_argument);

  bad = PlanRequest{};
  bad.tier = PlanTier::kSearch;
  bad.searchRuns = 0;
  EXPECT_THROW(canonicalize(bad), std::invalid_argument);
}

TEST(CanonicalizeTest, DistinctQuestionsKeepDistinctKeys) {
  PlanRequest base;
  PlanRequest byN = base;
  byN.n = base.n + 1;
  PlanRequest byAlgo = base;
  byAlgo.algo = Algo::kPIO;
  PlanRequest byTier = base;
  byTier.tier = PlanTier::kSearch;
  PlanRequest byTopo = base;
  byTopo.topology = Topology::kStar;
  const std::string k = canonicalize(base).text;
  EXPECT_NE(k, canonicalize(byN).text);
  EXPECT_NE(k, canonicalize(byAlgo).text);
  EXPECT_NE(k, canonicalize(byTier).text);
  EXPECT_NE(k, canonicalize(byTopo).text);
}

// --- Near-boundary and degenerate ratios (the atlas-lookup feeders) -------
// Atlas cell assignment consumes the canonicalized ratio; these pin the
// behaviors its determinism relies on.

TEST(CanonicalizeTest, NearEqualPrAndRrStayOrderedAndStable) {
  // P_r ≈ R_r sits right on the canonical-form edge (P must be fastest).
  // Within %.6g resolution the noise folds onto the exact 3:3:1 key...
  PlanRequest exact;
  exact.ratio = Ratio{3, 3, 1};
  PlanRequest noisy = exact;
  noisy.ratio = Ratio{3.0000001, 3, 1};
  EXPECT_EQ(canonicalize(exact).text, canonicalize(noisy).text);
  // ...while a difference %.6g can resolve keeps its own key.
  PlanRequest distinct = exact;
  distinct.ratio = Ratio{3.0001, 3, 1};
  EXPECT_NE(canonicalize(exact).text, canonicalize(distinct).text);
}

TEST(CanonicalizeTest, ExtremeSkewRoundTripsThroughTheKey) {
  // 1000:1:1 — the far-corner heterogeneity the paper's Fig. 13 axis ends
  // well before. The key must carry it exactly (no overflow into
  // scientific-notation mismatches between equal requests).
  PlanRequest a;
  a.ratio = Ratio{1000, 1, 1};
  PlanRequest b;
  b.ratio = Ratio{3000, 3, 3};
  const CanonicalKey ka = canonicalize(a);
  EXPECT_EQ(ka.text, canonicalize(b).text);
  EXPECT_EQ(ka.request.ratio, (Ratio{1000, 1, 1}));
}

TEST(CanonicalizeTest, NearEqualRrAndSrSwapDeterministically) {
  // r ≈ s: whichever label is (even marginally) faster must land in the R
  // slot, and two requests that %.6g-round to the same ratio must share a
  // key regardless of which side of the swap they arrived on.
  PlanRequest a;
  a.ratio = Ratio{5, 2.0000001, 2};
  PlanRequest b;
  b.ratio = Ratio{5, 2, 2.0000001};
  EXPECT_EQ(canonicalize(a).text, canonicalize(b).text);
  const Ratio canon = canonicalize(a).request.ratio;
  EXPECT_GE(canon.r, canon.s);
}

TEST(CanonicalizeTest, CanonicalRatioIsIdempotent) {
  // Canonicalizing a canonicalized request must be the identity — the %.6g
  // rounding cannot drift a key under re-canonicalization (the oracle
  // re-derives keys from canonical requests in solveUncached).
  PlanRequest req;
  req.ratio = Ratio{10.0 / 3.0, 7.0 / 3.0, 1.0000004};
  const CanonicalKey once = canonicalize(req);
  const CanonicalKey twice = canonicalize(once.request);
  EXPECT_EQ(once.text, twice.text);
  EXPECT_EQ(once.request.ratio, twice.request.ratio);
  EXPECT_EQ(once.hash, twice.hash);
}

TEST(Fnv1aTest, MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace pushpart
