// Timing-sensitive overload tests: real threads, real (short) waits. These
// assert only on outcomes — shed/admitted, timed-out/delivered — never on
// wall-clock ratios, but they still depend on bounded waits actually
// expiring, so the binary runs RUN_SERIAL (see tests/CMakeLists.txt) to
// keep an oversubscribed `ctest -j` from starving the waiters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/oracle.hpp"

namespace pushpart {
namespace {

CanonicalKey keyFor(int n, PlanTier tier = PlanTier::kFast) {
  PlanRequest req;
  req.n = n;
  req.tier = tier;
  if (tier == PlanTier::kSearch) req.searchRuns = 4;
  return canonicalize(req);
}

// The producer-death regression (really: producer-too-slow, which subsumes
// it): a coalesced waiter bounded by a deadline escapes with timedOut
// instead of blocking on a producer that may never deliver.
TEST(OverloadTest, CoalescedWaiterEscapesASlowProducer) {
  PlanCache cache(8, 2);
  const CanonicalKey key = keyFor(33);
  std::atomic<bool> solving{false};
  std::atomic<bool> release{false};

  std::thread producer([&]() {
    cache.getOrCompute(key, [&]() {
      solving.store(true);
      while (!release.load()) std::this_thread::yield();
      PlanAnswer a;
      a.voc = 7;
      return a;
    });
  });
  while (!solving.load()) std::this_thread::yield();

  const PlanCache::Outcome waited =
      cache.getOrCompute(key, []() { return PlanAnswer{}; },
                         Deadline::after(0.05));
  EXPECT_TRUE(waited.coalesced);
  EXPECT_TRUE(waited.timedOut);
  EXPECT_EQ(cache.counters().waitTimeouts, 1u);

  release.store(true);
  producer.join();
  // The producer's answer still landed; a later lookup hits.
  EXPECT_TRUE(cache.getOrCompute(key, []() { return PlanAnswer{}; }).hit);
}

TEST(OverloadTest, OracleDegradesACoalescedTimeoutToClosedForm) {
  std::atomic<bool> solving{false};
  std::atomic<bool> release{false};
  OracleOptions options;
  options.onSolveStart = [&](const CanonicalKey&) {
    solving.store(true);
    while (!release.load()) std::this_thread::yield();
  };
  Oracle oracle(options);

  PlanRequest req;
  req.n = 28;
  req.tier = PlanTier::kSearch;
  req.searchRuns = 4;

  std::thread producer([&]() { oracle.plan(req); });
  while (!solving.load()) std::this_thread::yield();

  PlanCallOptions call;
  call.deadline = Deadline::after(0.05);
  const PlanResponse r = oracle.plan(req, call);
  EXPECT_TRUE(r.coalesced);
  EXPECT_FALSE(r.shed);
  // Escaped the wait with a fresh closed-form answer, marked degraded.
  EXPECT_EQ(r.answer.servedTier, PlanTier::kFast);
  EXPECT_EQ(r.answer.degrade, DegradeReason::kNoTimeForSearch);
  EXPECT_GT(r.answer.voc, 0);

  release.store(true);
  producer.join();
  // The slow producer's full answer was cached for later callers.
  EXPECT_TRUE(oracle.plan(req).cacheHit);
}

TEST(OverloadTest, QueuedAcquireTimesOutAtItsDeadline) {
  AdmissionController admission({/*maxConcurrency=*/1, /*maxQueue=*/2});
  ASSERT_EQ(admission.acquire({}), AdmissionOutcome::kAdmitted);
  // The slot never frees: the queued acquire must give up at its deadline.
  EXPECT_EQ(admission.acquire(Deadline::after(0.05)),
            AdmissionOutcome::kTimedOut);
  EXPECT_EQ(admission.counters().shedTimeout, 1u);
  EXPECT_EQ(admission.counters().queued, 0);
  admission.release();
}

TEST(OverloadTest, QueuedAcquireWinsWhenASlotFreesInTime) {
  AdmissionController admission({/*maxConcurrency=*/1, /*maxQueue=*/2});
  ASSERT_EQ(admission.acquire({}), AdmissionOutcome::kAdmitted);

  std::atomic<bool> waiterDone{false};
  AdmissionOutcome waiterOutcome = AdmissionOutcome::kQueueFull;
  std::thread waiter([&]() {
    waiterOutcome = admission.acquire(Deadline::after(5.0));
    waiterDone.store(true);
  });
  // Give the waiter time to enqueue, then free the slot.
  while (admission.counters().queued == 0 && !waiterDone.load())
    std::this_thread::yield();
  admission.release();
  waiter.join();
  EXPECT_EQ(waiterOutcome, AdmissionOutcome::kAdmitted);
  admission.release();
}

// End-to-end mini overload run: more clients than slots, cache-busting
// tier-B keys, short deadlines. The ladder's global contract — every
// request is shed or answered, and nothing late goes unmarked — must hold
// under real contention.
TEST(OverloadTest, EveryRequestIsShedOrAnsweredAndLateImpliesMarked) {
  constexpr int kThreads = 6;
  constexpr int kPerThread = 4;
  OracleOptions options;
  options.admission.maxConcurrency = 2;
  options.admission.maxQueue = 2;
  options.cancelCheckEvery = 128;
  Oracle oracle(options);

  std::atomic<int> shed{0};
  std::atomic<int> answered{0};
  std::atomic<int> lateUnmarked{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        PlanRequest req;
        req.n = 60;
        req.tier = PlanTier::kSearch;
        req.searchRuns = 200;  // far more than a 40 ms budget allows
        req.searchSeed = static_cast<std::uint64_t>(1 + t * kPerThread + i);
        PlanCallOptions call;
        call.deadline = Deadline::after(0.04);
        const PlanResponse r = oracle.plan(req, call);
        if (r.shed) {
          ++shed;
          continue;
        }
        ++answered;
        if (r.deadlineExceeded && r.answer.fullFidelity()) ++lateUnmarked;
      }
    });
  for (auto& th : pool) th.join();

  EXPECT_EQ(shed.load() + answered.load(), kThreads * kPerThread);
  EXPECT_GT(answered.load(), 0);
  EXPECT_EQ(lateUnmarked.load(), 0);

  const OracleStats stats = oracle.stats();
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(shed.load()));
  // With 6 clients on 2 slots and 200-walk budgets, the ladder must have
  // actually engaged somewhere: degradation, shedding, or both.
  EXPECT_GT(stats.degraded + stats.shed, 0u);
}

}  // namespace
}  // namespace pushpart
