#include "cluster/detector.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace pushpart {
namespace {

DetectorOptions thresholds(double suspect, double confirm) {
  DetectorOptions o;
  o.suspectAfterSeconds = suspect;
  o.confirmAfterSeconds = confirm;
  return o;
}

TEST(DetectorOptionsTest, ValidationRejectsBadThresholds) {
  EXPECT_THROW(thresholds(0.0, 0.4).validate(), CheckError);
  EXPECT_THROW(thresholds(-0.1, 0.4).validate(), CheckError);
  EXPECT_THROW(thresholds(0.4, 0.4).validate(), CheckError);  // not inverted,
  EXPECT_THROW(thresholds(0.5, 0.4).validate(), CheckError);  // not equal.
  EXPECT_NO_THROW(thresholds(0.15, 0.4).validate());
}

TEST(FailureDetectorTest, SilenceWalksAliveSuspectDown) {
  // Thresholds are exact binary fractions (0.25, 0.5) so the boundary
  // arithmetic is FP-exact: silence == threshold stays in the milder state.
  FailureDetector det(1, thresholds(0.25, 0.5), /*startSeconds=*/10.0);
  // healthAt is pure: probing every boundary never mutates state.
  EXPECT_EQ(det.healthAt(0, 10.0), NodeHealth::kAlive);
  EXPECT_EQ(det.healthAt(0, 10.25), NodeHealth::kAlive);   // <= suspect
  EXPECT_EQ(det.healthAt(0, 10.3), NodeHealth::kSuspect);
  EXPECT_EQ(det.healthAt(0, 10.5), NodeHealth::kSuspect);  // <= confirm
  EXPECT_EQ(det.healthAt(0, 10.6), NodeHealth::kDown);
  // And an earlier probe still sees the earlier answer.
  EXPECT_EQ(det.healthAt(0, 10.1), NodeHealth::kAlive);
}

TEST(FailureDetectorTest, HeartbeatResetsTheSilenceWindow) {
  FailureDetector det(1, thresholds(0.15, 0.4));
  det.heartbeat(0, 1.0);
  EXPECT_EQ(det.lastHeartbeatAt(0), 1.0);
  EXPECT_EQ(det.healthAt(0, 1.1), NodeHealth::kAlive);
  det.heartbeat(0, 1.1);
  // The window restarts from the newest beat.
  EXPECT_EQ(det.healthAt(0, 1.25), NodeHealth::kAlive);
  EXPECT_EQ(det.healthAt(0, 1.3), NodeHealth::kSuspect);
}

TEST(FailureDetectorTest, StaleHeartbeatNeverRewindsTime) {
  FailureDetector det(1, thresholds(0.15, 0.4));
  det.heartbeat(0, 5.0);
  det.heartbeat(0, 3.0);  // late-arriving, out of order: ignored
  EXPECT_EQ(det.lastHeartbeatAt(0), 5.0);
}

TEST(FailureDetectorTest, ObserveCountsEachEdgeOnce) {
  FailureDetector det(2, thresholds(0.15, 0.4));
  // Node 0 goes silent: alive -> suspect -> down, each edge counted once
  // no matter how often observe() re-runs inside a phase.
  EXPECT_EQ(det.observe(0, 0.1), NodeHealth::kAlive);
  EXPECT_EQ(det.observe(0, 0.2), NodeHealth::kSuspect);
  EXPECT_EQ(det.observe(0, 0.3), NodeHealth::kSuspect);
  EXPECT_EQ(det.counters().suspicions, 1u);
  EXPECT_EQ(det.observe(0, 0.5), NodeHealth::kDown);
  EXPECT_EQ(det.observe(0, 0.6), NodeHealth::kDown);
  EXPECT_EQ(det.counters().confirmations, 1u);
  EXPECT_EQ(det.counters().recoveries, 0u);

  // It comes back: down -> alive is one recovery.
  det.heartbeat(0, 0.7);
  EXPECT_EQ(det.observe(0, 0.7), NodeHealth::kAlive);
  EXPECT_EQ(det.counters().recoveries, 1u);

  // Node 1 heartbeated throughout; its edges never fired.
  det.heartbeat(1, 0.6);
  EXPECT_EQ(det.observe(1, 0.7), NodeHealth::kAlive);
  EXPECT_EQ(det.counters().suspicions, 1u);
  EXPECT_EQ(det.counters().confirmations, 1u);
}

TEST(FailureDetectorTest, SuspicionRecoversWithoutConfirmation) {
  // A dropped heartbeat or two: the node dips into suspicion, the next
  // beat lands, and no confirmation is ever counted — the two-threshold
  // design's whole purpose.
  FailureDetector det(1, thresholds(0.15, 0.4));
  EXPECT_EQ(det.observe(0, 0.2), NodeHealth::kSuspect);
  det.heartbeat(0, 0.25);
  EXPECT_EQ(det.observe(0, 0.3), NodeHealth::kAlive);
  EXPECT_EQ(det.counters().suspicions, 1u);
  EXPECT_EQ(det.counters().confirmations, 0u);
  EXPECT_EQ(det.counters().recoveries, 1u);
}

TEST(FailureDetectorTest, SilentCrashSkipsStraightToConfirmation) {
  // If observe() first runs long after the crash, the alive -> down edge
  // still counts as a confirmation (and not also a suspicion).
  FailureDetector det(1, thresholds(0.15, 0.4));
  EXPECT_EQ(det.observe(0, 5.0), NodeHealth::kDown);
  EXPECT_EQ(det.counters().suspicions, 0u);
  EXPECT_EQ(det.counters().confirmations, 1u);
}

}  // namespace
}  // namespace pushpart
