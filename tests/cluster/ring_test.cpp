#include "cluster/ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "serve/request.hpp"

namespace pushpart {
namespace {

/// The canonical key hash the router actually feeds the ring.
std::uint64_t keyHashFor(int n) {
  PlanRequest req;
  req.n = n;
  return canonicalize(req).hash;
}

TEST(HashRingTest, RejectsNonPositiveCounts) {
  EXPECT_THROW(HashRing(0, 32), std::invalid_argument);
  EXPECT_THROW(HashRing(-1, 32), std::invalid_argument);
  EXPECT_THROW(HashRing(3, 0), std::invalid_argument);
}

TEST(HashRingTest, OwnersAreDistinctValidAndLedByThePrimary) {
  const HashRing ring(5, 32);
  for (int n = 20; n < 120; ++n) {
    const auto owners = ring.ownersFor(keyHashFor(n), 3);
    ASSERT_EQ(owners.size(), 3u);
    std::set<int> distinct(owners.begin(), owners.end());
    EXPECT_EQ(distinct.size(), 3u) << "duplicate owner for n=" << n;
    for (int node : owners) {
      EXPECT_GE(node, 0);
      EXPECT_LT(node, 5);
    }
    // k=1 returns exactly the primary (the head of every longer list).
    EXPECT_EQ(ring.ownersFor(keyHashFor(n), 1).front(), owners.front());
  }
}

TEST(HashRingTest, KIsClampedToTheNodeCount) {
  const HashRing ring(3, 16);
  const auto owners = ring.ownersFor(keyHashFor(64), 99);
  ASSERT_EQ(owners.size(), 3u);
  EXPECT_EQ(std::set<int>(owners.begin(), owners.end()).size(), 3u);
}

TEST(HashRingTest, OwnershipIsDeterministicAcrossInstances) {
  // Two rings with the same (nodeCount, vnodes) config agree on every key:
  // the router, the rebalancer and the census all rebuild the same map.
  const HashRing a(4, 32);
  const HashRing b(4, 32);
  for (int n = 20; n < 200; n += 7) {
    const std::uint64_t h = keyHashFor(n);
    EXPECT_EQ(a.ownersFor(h, 2), b.ownersFor(h, 2));
  }
}

TEST(HashRingTest, OwnsMatchesOwnersFor) {
  const HashRing ring(4, 32);
  for (int n = 30; n < 90; ++n) {
    const std::uint64_t h = keyHashFor(n);
    const auto owners = ring.ownersFor(h, 2);
    for (int node = 0; node < 4; ++node) {
      const bool listed =
          std::find(owners.begin(), owners.end(), node) != owners.end();
      EXPECT_EQ(ring.owns(node, h, 2), listed);
    }
  }
}

TEST(HashRingTest, VirtualNodesSmoothThePrimaryShares) {
  const HashRing ring(3, 64);
  const auto shares = ring.primaryShares();
  ASSERT_EQ(shares.size(), 3u);
  const double total = std::accumulate(shares.begin(), shares.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  // With 64 vnodes per node every share lands well inside [1/6, 1/2] —
  // loose enough to be seed-independent, tight enough to catch a broken
  // point distribution (one node owning almost everything).
  for (double s : shares) {
    EXPECT_GT(s, 1.0 / 6.0);
    EXPECT_LT(s, 1.0 / 2.0);
  }
}

TEST(HashRingTest, MoreVnodesTightenTheSpread) {
  // The whole point of virtual nodes: spread (max-min primary share)
  // shrinks as vnodesPerNode grows.
  const auto spread = [](const HashRing& ring) {
    const auto shares = ring.primaryShares();
    const auto [lo, hi] = std::minmax_element(shares.begin(), shares.end());
    return *hi - *lo;
  };
  EXPECT_LT(spread(HashRing(4, 128)), spread(HashRing(4, 1)));
}

TEST(HashRingTest, KeysSpreadAcrossPrimaries) {
  // Route a realistic key population; no node may be starved or dominant.
  const HashRing ring(3, 32);
  std::vector<int> perNode(3, 0);
  const int keys = 300;
  for (int i = 0; i < keys; ++i)
    perNode[static_cast<std::size_t>(
        ring.ownersFor(keyHashFor(20 + 3 * i), 1).front())]++;
  for (int count : perNode) {
    EXPECT_GT(count, keys / 10);
    EXPECT_LT(count, keys * 6 / 10);
  }
}

}  // namespace
}  // namespace pushpart
