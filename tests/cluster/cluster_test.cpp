#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/request.hpp"
#include "support/check.hpp"

namespace pushpart {
namespace {

/// Workload keys: distinct canonical fast-tier requests.
PlanRequest keyRequest(int slot) {
  PlanRequest req;
  req.n = 100 + 3 * slot;
  return req;
}

std::string keyText(int slot) { return canonicalize(keyRequest(slot)).text; }

std::vector<int> ownersOf(const OracleCluster& cluster, int slot) {
  return cluster.ring().ownersFor(canonicalize(keyRequest(slot)).hash,
                                  cluster.options().replication);
}

bool eventLogged(const std::vector<ClusterEvent>& events,
                 const std::string& needle) {
  for (const ClusterEvent& e : events)
    if (e.what.find(needle) != std::string::npos) return true;
  return false;
}

ClusterOptions baseOptions(const Clock& clock) {
  ClusterOptions o;
  o.clock = &clock;
  return o;
}

TEST(ClusterOptionsTest, ValidationRejectsBadValues) {
  const auto invalid = [](auto&& mutate) {
    ClusterOptions o;
    mutate(o);
    EXPECT_THROW(o.validate(), CheckError);
  };
  invalid([](ClusterOptions& o) { o.nodes = 0; });
  invalid([](ClusterOptions& o) { o.replication = 0; });
  invalid([](ClusterOptions& o) { o.replication = o.nodes + 1; });
  invalid([](ClusterOptions& o) { o.vnodesPerNode = 0; });
  invalid([](ClusterOptions& o) { o.heartbeatIntervalSeconds = 0.0; });
  invalid([](ClusterOptions& o) { o.suspectAfterSeconds = 0.01; });
  invalid([](ClusterOptions& o) { o.confirmAfterSeconds = 0.1; });
  invalid([](ClusterOptions& o) { o.segmentEntries = 0; });
  EXPECT_NO_THROW(ClusterOptions{}.validate());
}

TEST(OracleClusterTest, PerfectFleetServesFromPrimaryAndReplicates) {
  FakeClock clock;
  OracleCluster cluster(baseOptions(clock));
  cluster.tick();

  const ClusterResponse first = cluster.plan(keyRequest(0));
  EXPECT_FALSE(first.clusterShed);
  EXPECT_EQ(first.servedBy, ownersOf(cluster, 0).front());
  EXPECT_EQ(first.attempts, 1);
  EXPECT_FALSE(first.replicaHit);
  EXPECT_FALSE(first.response.cacheHit);

  // The solve was replicated to the key's other owner at write time.
  const auto census = cluster.replicaCounts();
  ASSERT_TRUE(census.count(keyText(0)));
  EXPECT_EQ(census.at(keyText(0)), cluster.options().replication);

  // A repeat is a primary cache hit, not a replica hit.
  const ClusterResponse second = cluster.plan(keyRequest(0));
  EXPECT_TRUE(second.response.cacheHit);
  EXPECT_EQ(second.servedBy, first.servedBy);
  EXPECT_FALSE(second.replicaHit);

  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.primaryServes, 2u);
  EXPECT_EQ(stats.replicaServes, 0u);
  EXPECT_EQ(stats.replicasWritten,
            static_cast<std::uint64_t>(cluster.options().replication - 1));
  EXPECT_EQ(stats.clusterSheds, 0u);
  for (NodeStatus s : stats.statuses) EXPECT_EQ(s, NodeStatus::kUp);
}

TEST(OracleClusterTest, ReadYourReplicaWhileThePrimaryIsPartitioned) {
  FakeClock clock;
  // Compute the key's primary on an identical standalone ring so the
  // partition can be scheduled before the cluster exists — ownership is a
  // pure function of (nodes, vnodes, key), so the two rings agree.
  const HashRing preview(3, 32);
  const int primary =
      preview.ownersFor(canonicalize(keyRequest(0)).hash, 2).front();

  ClusterOptions options = baseOptions(clock);
  options.faults.partitions.push_back(
      LinkPartition{kRouterEndpoint, primary, 1.0, 10.0});
  OracleCluster cluster(options);
  cluster.tick();

  // Warm the key while the fleet is whole: primary solves, replica receives.
  ASSERT_EQ(cluster.plan(keyRequest(0)).servedBy, primary);

  // Inside the partition window the primary is unreachable but *believed*
  // up (no tick has run since, so no suspicion yet) — and the replica's
  // cached copy answers anyway.
  clock.advance(1.5);
  const ClusterResponse during = cluster.plan(keyRequest(0));
  EXPECT_FALSE(during.clusterShed);
  EXPECT_NE(during.servedBy, primary);
  EXPECT_TRUE(during.replicaHit);
  EXPECT_TRUE(during.response.cacheHit);

  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.replicaServes, 1u);
  EXPECT_EQ(stats.replicaHits, 1u);

  // A partitioned node's state survives: the census still counts both
  // copies — nothing was lost, only unreachable.
  EXPECT_EQ(cluster.replicaCounts().at(keyText(0)), 2);
}

TEST(OracleClusterTest, CensusDropsKilledStateButKeepsPartitionedState) {
  FakeClock clock;
  const HashRing preview(3, 32);
  const auto owners = preview.ownersFor(canonicalize(keyRequest(0)).hash, 2);

  ClusterOptions options = baseOptions(clock);
  options.faults.kills.push_back(NodeKill{owners[1], 1.0, std::nullopt});
  OracleCluster cluster(options);
  cluster.tick();
  cluster.plan(keyRequest(0));
  EXPECT_EQ(cluster.replicaCounts().at(keyText(0)), 2);

  // Kill the replica: its copy is gone from the census that instant —
  // exactly the accounting a durability drill needs.
  clock.advance(1.5);
  EXPECT_EQ(cluster.replicaCounts().at(keyText(0)), 1);
}

TEST(OracleClusterTest, KillConfirmRejoinRestoresTheReplicationFactor) {
  constexpr int kKeys = 16;
  constexpr double kStep = 0.05;
  FakeClock clock;
  ClusterOptions options = baseOptions(clock);
  options.faults.kills.push_back(NodeKill{1, 1.0, 2.0});
  OracleCluster cluster(options);

  // Warm phase [0, 1): every key solved and replicated while whole.
  for (int step = 0; step < 19; ++step) {
    cluster.tick();
    EXPECT_FALSE(cluster.plan(keyRequest(step % kKeys)).clusterShed);
    clock.advance(kStep);
  }
  for (int k = 0; k < kKeys; ++k)
    ASSERT_EQ(cluster.replicaCounts().at(keyText(k)), 2) << "key " << k;

  // Death phase [1, 2): the kill lands, suspicion then confirmation follow
  // from missed heartbeats alone, and every request keeps being answered.
  int answered = 0;
  while (cluster.nowSeconds() < 2.0 - kStep / 2) {
    cluster.tick();
    if (!cluster.plan(keyRequest((answered * 7) % kKeys)).clusterShed)
      ++answered;
    clock.advance(kStep);
  }
  EXPECT_EQ(answered, 21);  // 100% availability through the outage
  {
    const ClusterStats mid = cluster.stats();
    EXPECT_EQ(mid.statuses[1], NodeStatus::kDown);
    EXPECT_EQ(mid.health[1], NodeHealth::kDown);
    EXPECT_GE(mid.detector.suspicions, 1u);
    EXPECT_GE(mid.detector.confirmations, 1u);
    EXPECT_EQ(mid.coldRestarts[1], 1u);
  }

  // Recovery: the first tick at/after the rejoin instant hears the node,
  // streams its share back segment by segment, and returns it to rotation.
  cluster.tick();
  const ClusterStats after = cluster.stats();
  EXPECT_EQ(after.statuses[1], NodeStatus::kUp);
  EXPECT_GE(after.detector.recoveries, 1u);
  EXPECT_EQ(after.rebalance.rebalances, 1u);
  EXPECT_GE(after.rebalance.segmentsStreamed, 1u);
  EXPECT_GT(after.rebalance.entriesStreamed, 0u);

  // Zero replicated entries lost; the replication factor is whole again.
  for (int k = 0; k < kKeys; ++k)
    EXPECT_EQ(cluster.replicaCounts().at(keyText(k)), 2) << "key " << k;

  const auto events = cluster.events();
  EXPECT_TRUE(eventLogged(events, "node 1 killed"));
  EXPECT_TRUE(eventLogged(events, "node 1 suspected"));
  EXPECT_TRUE(eventLogged(events, "node 1 confirmed down"));
  EXPECT_TRUE(eventLogged(events, "node 1 rejoining"));
  EXPECT_TRUE(eventLogged(events, "node 1 recovered"));
  EXPECT_TRUE(eventLogged(events, "rebalance: node 1"));
}

TEST(OracleClusterTest, HintedHandoffDeliversParkedWritesOnRecovery) {
  constexpr int kKeys = 12;
  constexpr double kStep = 0.05;
  FakeClock clock;
  ClusterOptions options = baseOptions(clock);
  // Node 1 is dead from the start; every key it owns that is solved during
  // the outage becomes a parked hint instead of a replica write.
  options.faults.kills.push_back(NodeKill{1, 0.0, 1.0});
  OracleCluster cluster(options);

  while (cluster.nowSeconds() < 1.0 - kStep / 2) {
    cluster.tick();
    for (int k = 0; k < kKeys; ++k)
      EXPECT_FALSE(cluster.plan(keyRequest(k)).clusterShed);
    clock.advance(kStep);
  }
  const ClusterStats before = cluster.stats();
  ASSERT_GT(before.hintsStored, 0u);  // some keys are owned by node 1
  EXPECT_EQ(before.hintsDelivered, 0u);
  EXPECT_EQ(before.hintsDropped, 0u);

  cluster.tick();  // rejoin instant: rebalance + hint delivery
  const ClusterStats after = cluster.stats();
  EXPECT_EQ(after.hintsDelivered, before.hintsStored);
  EXPECT_EQ(after.hintsDropped, 0u);
  EXPECT_TRUE(eventLogged(cluster.events(), "hints delivered"));
  for (int k = 0; k < kKeys; ++k)
    EXPECT_EQ(cluster.replicaCounts().at(keyText(k)), 2) << "key " << k;
}

TEST(OracleClusterTest, ShedsOnlyWhenEveryOwnerIsDown) {
  FakeClock clock;
  ClusterOptions options = baseOptions(clock);
  for (int n = 0; n < options.nodes; ++n)
    options.faults.kills.push_back(NodeKill{n, 0.0, std::nullopt});
  OracleCluster cluster(options);

  // Before confirmation the router still believes the fleet is up, tries
  // every owner, and each attempt fails over — then sheds.
  const ClusterResponse early = cluster.plan(keyRequest(0));
  EXPECT_TRUE(early.clusterShed);
  EXPECT_EQ(early.clusterShedReason, ClusterShedReason::kAllOwnersDown);
  EXPECT_TRUE(early.response.shed);
  EXPECT_EQ(early.servedBy, -1);
  EXPECT_EQ(early.attempts, cluster.options().replication);

  // After confirmation the owners are out of rotation: no attempts made.
  clock.advance(0.5);
  cluster.tick();
  const ClusterResponse late = cluster.plan(keyRequest(0));
  EXPECT_TRUE(late.clusterShed);
  EXPECT_EQ(late.clusterShedReason, ClusterShedReason::kAllOwnersDown);
  EXPECT_EQ(late.attempts, 0);
  EXPECT_EQ(cluster.stats().clusterSheds, 2u);
}

TEST(OracleClusterTest, ShedReasonDistinguishesSheddingFromDownOwners) {
  // One node, replication 1, one admission slot with no waiting room: while
  // a cold solve holds the slot, a second request is load-shed by the
  // *instance*, which the cluster reports as all-owners-shedding (the node
  // was reachable and tried — different failure, different reason).
  FakeClock clock;
  ClusterOptions options = baseOptions(clock);
  options.nodes = 1;
  options.replication = 1;
  options.oracle.admission.maxConcurrency = 1;
  options.oracle.admission.maxQueue = 0;

  std::atomic<bool> solveStarted{false};
  std::atomic<bool> release{false};
  options.oracle.onSolveStart = [&](const CanonicalKey&) {
    solveStarted.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  };
  OracleCluster cluster(options);
  cluster.tick();

  std::thread holder([&]() { cluster.plan(keyRequest(0)); });
  while (!solveStarted.load(std::memory_order_acquire))
    std::this_thread::yield();

  const ClusterResponse shed = cluster.plan(keyRequest(1));
  EXPECT_TRUE(shed.clusterShed);
  EXPECT_EQ(shed.clusterShedReason, ClusterShedReason::kAllOwnersShedding);
  EXPECT_EQ(shed.attempts, 1);

  release.store(true, std::memory_order_release);
  holder.join();
  EXPECT_EQ(cluster.stats().clusterSheds, 1u);
}

TEST(OracleClusterTest, ConcurrentPlansAndTicksThroughAKillAreRaceFree) {
  // The TSan target: router threads plan() (shared lock, per-attempt
  // CancelToken layering via withDeadline) while the driver tick()s through
  // a kill-confirm-rejoin cycle (exclusive lock, oracle swap, rebalance) and
  // a caller cancels mid-flight. Assertions are deliberately coarse — the
  // point is that every interleaving is clean under TSan and no request is
  // silently dropped.
  constexpr int kThreads = 3;
  constexpr int kPerThread = 40;
  constexpr int kKeys = 8;
  FakeClock clock;
  ClusterOptions options = baseOptions(clock);
  options.faults.kills.push_back(NodeKill{1, 0.2, 0.7});
  OracleCluster cluster(options);
  cluster.tick();

  CancelToken caller;
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> sheds{0};
  std::vector<std::thread> routers;
  for (int t = 0; t < kThreads; ++t) {
    routers.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        PlanCallOptions call;
        call.deadline = Deadline::after(10.0, clock);
        call.cancel = caller.withDeadline(call.deadline);
        const ClusterResponse r =
            cluster.plan(keyRequest((t + 3 * i) % kKeys), call);
        (r.clusterShed ? sheds : answered).fetch_add(1,
                                                     std::memory_order_relaxed);
        std::this_thread::yield();  // interleave with the ticking driver
      }
    });
  }

  for (int step = 0; step < 20; ++step) {
    clock.advance(0.05);
    cluster.tick();
    if (step == 10) caller.requestCancel();
    std::this_thread::yield();
  }
  for (std::thread& r : routers) r.join();

  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(answered.load() + sheds.load(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  // The kill cycle completed underneath the traffic.
  EXPECT_EQ(stats.coldRestarts[1], 1u);
  EXPECT_EQ(stats.statuses[1], NodeStatus::kUp);
}

}  // namespace
}  // namespace pushpart
