#include "support/log.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/stopwatch.hpp"

namespace pushpart {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(logLevel()) {}
  ~LogLevelGuard() { setLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, LevelThresholdRoundTrips) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::kWarn);
  EXPECT_EQ(logLevel(), LogLevel::kWarn);
  setLogLevel(LogLevel::kDebug);
  EXPECT_EQ(logLevel(), LogLevel::kDebug);
}

TEST(LogTest, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::kError);
  // These go below the threshold and must be dropped silently.
  PUSHPART_LOG(kDebug) << "dropped " << 1;
  PUSHPART_LOG(kInfo) << "dropped " << 2.5;
  PUSHPART_LOG(kWarn) << "dropped " << "three";
}

TEST(LogTest, StreamSyntaxFormatsMixedTypes) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::kError);  // keep test output clean
  PUSHPART_LOG(kInfo) << "n=" << 42 << " ratio=" << 2.5 << " ok=" << true;
}

TEST(LogTest, ConcurrentLoggingIsSafe) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::kError);  // suppressed, but the path is exercised
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i)
        PUSHPART_LOG(kInfo) << "thread " << t << " line " << i;
    });
  }
  for (auto& th : threads) th.join();
}

TEST(LogTest, ParseLogLevelAcceptsEveryName) {
  EXPECT_EQ(parseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(parseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(parseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(parseLogLevel("error"), LogLevel::kError);
}

TEST(LogTest, ParseLogLevelRejectsUnknownNames) {
  EXPECT_THROW(parseLogLevel("verbose"), std::invalid_argument);
  EXPECT_THROW(parseLogLevel(""), std::invalid_argument);
  EXPECT_THROW(parseLogLevel("DEBUG"), std::invalid_argument);
  try {
    parseLogLevel("loud");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("expected debug|info|warn|error"),
              std::string::npos);
  }
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.seconds(), 0.015);
  EXPECT_GE(sw.millis(), 15.0);
}

TEST(StopwatchTest, ResetRestartsClock) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.015);
}

TEST(StopwatchTest, MonotoneNonNegative) {
  Stopwatch sw;
  double last = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = sw.seconds();
    EXPECT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace pushpart
