#include "support/log.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/stopwatch.hpp"

namespace pushpart {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(logLevel()) {}
  ~LogLevelGuard() { setLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, LevelThresholdRoundTrips) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::kWarn);
  EXPECT_EQ(logLevel(), LogLevel::kWarn);
  setLogLevel(LogLevel::kDebug);
  EXPECT_EQ(logLevel(), LogLevel::kDebug);
}

TEST(LogTest, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::kError);
  // These go below the threshold and must be dropped silently.
  PUSHPART_LOG(kDebug) << "dropped " << 1;
  PUSHPART_LOG(kInfo) << "dropped " << 2.5;
  PUSHPART_LOG(kWarn) << "dropped " << "three";
}

TEST(LogTest, StreamSyntaxFormatsMixedTypes) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::kError);  // keep test output clean
  PUSHPART_LOG(kInfo) << "n=" << 42 << " ratio=" << 2.5 << " ok=" << true;
}

TEST(LogTest, ConcurrentLoggingIsSafe) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::kError);  // suppressed, but the path is exercised
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i)
        PUSHPART_LOG(kInfo) << "thread " << t << " line " << i;
    });
  }
  for (auto& th : threads) th.join();
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.seconds(), 0.015);
  EXPECT_GE(sw.millis(), 15.0);
}

TEST(StopwatchTest, ResetRestartsClock) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.015);
}

TEST(StopwatchTest, MonotoneNonNegative) {
  Stopwatch sw;
  double last = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = sw.seconds();
    EXPECT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace pushpart
