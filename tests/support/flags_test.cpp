#include "support/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pushpart {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  const auto f = make({"--n=100", "--ratio=5:2:1"});
  EXPECT_EQ(f.i64("n", 0), 100);
  EXPECT_EQ(f.str("ratio", ""), "5:2:1");
}

TEST(FlagsTest, SpaceSyntax) {
  const auto f = make({"--n", "250", "--name", "hello"});
  EXPECT_EQ(f.i64("n", 0), 250);
  EXPECT_EQ(f.str("name", ""), "hello");
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  const auto f = make({"--verbose"});
  EXPECT_TRUE(f.b("verbose", false));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  const auto f = make({});
  EXPECT_EQ(f.i64("n", 77), 77);
  EXPECT_DOUBLE_EQ(f.f64("x", 1.5), 1.5);
  EXPECT_EQ(f.str("s", "dflt"), "dflt");
  EXPECT_FALSE(f.b("v", false));
  EXPECT_FALSE(f.has("n"));
}

TEST(FlagsTest, FloatParsing) {
  const auto f = make({"--x=2.75", "--y", "-0.5"});
  EXPECT_DOUBLE_EQ(f.f64("x", 0), 2.75);
  EXPECT_DOUBLE_EQ(f.f64("y", 0), -0.5);
}

TEST(FlagsTest, NegativeNumberAsValue) {
  const auto f = make({"--delta", "-12"});
  EXPECT_EQ(f.i64("delta", 0), -12);
}

TEST(FlagsTest, BooleanSpellings) {
  EXPECT_TRUE(make({"--a=true"}).b("a", false));
  EXPECT_TRUE(make({"--a=1"}).b("a", false));
  EXPECT_TRUE(make({"--a=on"}).b("a", false));
  EXPECT_FALSE(make({"--a=false"}).b("a", true));
  EXPECT_FALSE(make({"--a=0"}).b("a", true));
  EXPECT_FALSE(make({"--a=off"}).b("a", true));
}

TEST(FlagsTest, MalformedIntegerThrows) {
  const auto f = make({"--n=abc"});
  EXPECT_THROW(f.i64("n", 0), std::invalid_argument);
}

TEST(FlagsTest, MalformedBooleanThrows) {
  const auto f = make({"--a=maybe"});
  EXPECT_THROW(f.b("a", false), std::invalid_argument);
}

TEST(FlagsTest, PositionalArguments) {
  const auto f = make({"input.txt", "--n=5", "other"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "other");
}

TEST(FlagsTest, LastDuplicateWins) {
  const auto f = make({"--n=1", "--n=2"});
  EXPECT_EQ(f.i64("n", 0), 2);
}

TEST(FlagsTest, NamesListsAllFlags) {
  const auto f = make({"--b=1", "--a=2"});
  const auto names = f.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // map iteration is sorted
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace pushpart
