#include "support/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace pushpart {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/pushpart_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.row({std::vector<std::string>{"1", "2"}});
    w.row({3.5, 4.0});
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2\n3.5,4\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter w(path_, {"text"});
    w.row(std::vector<std::string>{"has,comma"});
    w.row(std::vector<std::string>{"has\"quote"});
  }
  EXPECT_EQ(slurp(path_), "text\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST_F(CsvTest, ArityMismatchThrows) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.row(std::vector<std::string>{"only-one"}), CheckError);
}

TEST(CsvNullTest, DisabledWriterDiscardsRows) {
  CsvWriter w;  // no file
  EXPECT_FALSE(w.enabled());
  w.row(std::vector<std::string>{"anything", "goes"});  // must not throw
  w.row({1.0, 2.0, 3.0});
}

TEST(CsvPathTest, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

TEST(FormatNumberTest, Integers) {
  EXPECT_EQ(formatNumber(0), "0");
  EXPECT_EQ(formatNumber(42), "42");
  EXPECT_EQ(formatNumber(-7), "-7");
  EXPECT_EQ(formatNumber(1e6), "1000000");
}

TEST(FormatNumberTest, Decimals) {
  EXPECT_EQ(formatNumber(2.5), "2.5");
  EXPECT_EQ(formatNumber(0.125), "0.125");
}

TEST(FormatNumberTest, SpecialValues) {
  EXPECT_EQ(formatNumber(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(formatNumber(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(formatNumber(-std::numeric_limits<double>::infinity()), "-inf");
}

}  // namespace
}  // namespace pushpart
