#include "support/histogram.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pushpart {
namespace {

TEST(LatencyHistogramTest, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.meanSeconds(), 0.0);
}

TEST(LatencyHistogramTest, PercentileWithinBucketResolution) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(1e-4);  // 100 us
  EXPECT_EQ(h.count(), 1000u);
  // Buckets grow by 2^(1/4) (~19%); the reported midpoint must be within
  // one bucket of the true value.
  EXPECT_NEAR(h.percentile(0.5), 1e-4, 0.2e-4);
  EXPECT_NEAR(h.percentile(0.99), 1e-4, 0.2e-4);
}

TEST(LatencyHistogramTest, PercentilesOrderedAcrossMixedLoad) {
  LatencyHistogram h;
  for (int i = 0; i < 95; ++i) h.record(1e-6);  // fast: hits
  for (int i = 0; i < 5; ++i) h.record(1e-2);   // slow: cold solves
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.p50, 1e-6, 0.2e-6);
  EXPECT_NEAR(s.p95, 1e-6, 0.2e-6);  // 95th sample is still fast
  EXPECT_NEAR(s.p99, 1e-2, 0.2e-2);  // 99th lands in the slow tail
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(LatencyHistogramTest, OutOfRangeValuesClampToEdgeBuckets) {
  LatencyHistogram h;
  h.record(-1.0);  // negative -> bucket 0
  h.record(0.0);
  h.record(1e9);  // beyond the top bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GT(h.percentile(1.0), 0.0);
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.record(1e-3);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&h]() {
      for (int i = 0; i < kPerThread; ++i) h.record(1e-5);
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace pushpart
