#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace pushpart {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(123);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  // Each bucket expects 10000; allow ±5% (≈16 sigma, effectively never flaky).
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 95 / 100);
    EXPECT_LT(c, kDraws / kBuckets * 105 / 100);
  }
}

TEST(RngTest, RangeInclusiveBounds) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, RangeSingleton) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(RngTest, RealInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.real();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (s0() == s1()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(5), b(5);
  Rng sa = a.split(3), sb = b.split(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sa(), sb());
}

}  // namespace
}  // namespace pushpart
