#include "support/deadline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

namespace pushpart {
namespace {

TEST(DeadlineTest, DefaultIsUnlimitedAndNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.isUnlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remainingSeconds()));
  EXPECT_FALSE(Deadline::unlimited().expired());
}

TEST(DeadlineTest, ExpiresWhenTheClockPassesTheBudget) {
  FakeClock clock(100.0);
  const Deadline d = Deadline::after(5.0, clock);
  EXPECT_FALSE(d.isUnlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_DOUBLE_EQ(d.remainingSeconds(), 5.0);
  clock.advance(4.0);
  EXPECT_FALSE(d.expired());
  EXPECT_DOUBLE_EQ(d.remainingSeconds(), 1.0);
  clock.advance(1.0);
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.remainingSeconds(), 0.0);
  clock.advance(100.0);  // stays expired, remaining stays clamped
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.remainingSeconds(), 0.0);
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  FakeClock clock;
  EXPECT_TRUE(Deadline::after(0.0, clock).expired());
  EXPECT_TRUE(Deadline::after(-1.0, clock).expired());
  EXPECT_DOUBLE_EQ(Deadline::after(-1.0, clock).remainingSeconds(), 0.0);
}

TEST(DeadlineTest, SteadyClockAdvancesMonotonically) {
  const double a = Clock::steady().nowSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double b = Clock::steady().nowSeconds();
  EXPECT_GT(b, a);
  // A steady-clock deadline with a huge budget does not expire immediately.
  EXPECT_FALSE(Deadline::after(3600.0).expired());
}

TEST(CancelTokenTest, CopiesShareTheFlag) {
  CancelToken a;
  CancelToken b = a;
  EXPECT_FALSE(a.cancelled());
  EXPECT_FALSE(b.cancelled());
  b.requestCancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
}

TEST(CancelTokenTest, DeadlineExpiryCancelsTheToken) {
  FakeClock clock;
  const CancelToken token{Deadline::after(2.0, clock)};
  EXPECT_FALSE(token.cancelled());
  clock.advance(2.0);
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, WithDeadlineKeepsTheSharedFlag) {
  FakeClock clock;
  CancelToken original;
  const CancelToken bounded = original.withDeadline(Deadline::after(1.0, clock));
  EXPECT_FALSE(bounded.cancelled());
  // The flag is shared both ways...
  original.requestCancel();
  EXPECT_TRUE(bounded.cancelled());

  // ...and the deadline applies only to the bounded copy.
  CancelToken fresh;
  const CancelToken freshBounded =
      fresh.withDeadline(Deadline::after(1.0, clock));
  clock.advance(1.0);
  EXPECT_TRUE(freshBounded.cancelled());
  EXPECT_FALSE(fresh.cancelled());
}

}  // namespace
}  // namespace pushpart
