#include "support/deadline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

namespace pushpart {
namespace {

TEST(DeadlineTest, DefaultIsUnlimitedAndNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.isUnlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remainingSeconds()));
  EXPECT_FALSE(Deadline::unlimited().expired());
}

TEST(DeadlineTest, ExpiresWhenTheClockPassesTheBudget) {
  FakeClock clock(100.0);
  const Deadline d = Deadline::after(5.0, clock);
  EXPECT_FALSE(d.isUnlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_DOUBLE_EQ(d.remainingSeconds(), 5.0);
  clock.advance(4.0);
  EXPECT_FALSE(d.expired());
  EXPECT_DOUBLE_EQ(d.remainingSeconds(), 1.0);
  clock.advance(1.0);
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.remainingSeconds(), 0.0);
  clock.advance(100.0);  // stays expired, remaining stays clamped
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.remainingSeconds(), 0.0);
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  FakeClock clock;
  EXPECT_TRUE(Deadline::after(0.0, clock).expired());
  EXPECT_TRUE(Deadline::after(-1.0, clock).expired());
  EXPECT_DOUBLE_EQ(Deadline::after(-1.0, clock).remainingSeconds(), 0.0);
}

TEST(DeadlineTest, SteadyClockAdvancesMonotonically) {
  const double a = Clock::steady().nowSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const double b = Clock::steady().nowSeconds();
  EXPECT_GT(b, a);
  // A steady-clock deadline with a huge budget does not expire immediately.
  EXPECT_FALSE(Deadline::after(3600.0).expired());
}

TEST(CancelTokenTest, CopiesShareTheFlag) {
  CancelToken a;
  CancelToken b = a;
  EXPECT_FALSE(a.cancelled());
  EXPECT_FALSE(b.cancelled());
  b.requestCancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
}

TEST(CancelTokenTest, DeadlineExpiryCancelsTheToken) {
  FakeClock clock;
  const CancelToken token{Deadline::after(2.0, clock)};
  EXPECT_FALSE(token.cancelled());
  clock.advance(2.0);
  EXPECT_TRUE(token.cancelled());
}

TEST(CancelTokenTest, WithDeadlineDoesNotResurrectAnExpiredToken) {
  FakeClock clock;
  const CancelToken token{Deadline::after(1.0, clock)};
  clock.advance(1.0);
  ASSERT_TRUE(token.cancelled());
  // Merging a fresh, generous budget onto an already-expired token must not
  // un-cancel it: the router retry path layers a per-attempt deadline onto
  // the caller's token, and an expired caller stays expired.
  const CancelToken merged = token.withDeadline(Deadline::after(100.0, clock));
  EXPECT_TRUE(merged.cancelled());
  // The same holds for an unlimited replacement.
  EXPECT_TRUE(token.withDeadline(Deadline::unlimited()).cancelled());
}

TEST(CancelTokenTest, WithDeadlineMergesBothLiveDeadlines) {
  FakeClock clock;
  const CancelToken token{Deadline::after(1.0, clock)};
  const CancelToken merged = token.withDeadline(Deadline::after(5.0, clock));
  EXPECT_FALSE(merged.cancelled());
  // The inherited (earlier) deadline still cancels the merged token...
  clock.advance(1.0);
  EXPECT_TRUE(merged.cancelled());

  // ...and with the order flipped, the new (earlier) deadline fires first
  // while the original token waits for its own.
  FakeClock clock2;
  const CancelToken longToken{Deadline::after(5.0, clock2)};
  const CancelToken shortened =
      longToken.withDeadline(Deadline::after(1.0, clock2));
  clock2.advance(1.0);
  EXPECT_TRUE(shortened.cancelled());
  EXPECT_FALSE(longToken.cancelled());
}

TEST(CancelTokenTest, ChainedWithDeadlineKeepsEveryDeadline) {
  FakeClock clock;
  const CancelToken base{Deadline::after(1.0, clock)};
  const CancelToken twice = base.withDeadline(Deadline::after(10.0, clock))
                                .withDeadline(Deadline::after(20.0, clock));
  EXPECT_FALSE(twice.cancelled());
  clock.advance(1.0);  // only the first (innermost) deadline has passed
  EXPECT_TRUE(twice.cancelled());
}

TEST(CancelTokenTest, WithDeadlineKeepsTheSharedFlag) {
  FakeClock clock;
  CancelToken original;
  const CancelToken bounded = original.withDeadline(Deadline::after(1.0, clock));
  EXPECT_FALSE(bounded.cancelled());
  // The flag is shared both ways...
  original.requestCancel();
  EXPECT_TRUE(bounded.cancelled());

  // ...and the deadline applies only to the bounded copy.
  CancelToken fresh;
  const CancelToken freshBounded =
      fresh.withDeadline(Deadline::after(1.0, clock));
  clock.advance(1.0);
  EXPECT_TRUE(freshBounded.cancelled());
  EXPECT_FALSE(fresh.cancelled());
}

TEST(CancelTokenTest, ConcurrentObserversSeeMergedCopiesRaceFree) {
  // The cluster router's retry loop re-derives a per-attempt token with
  // withDeadline() while the solving thread polls the caller's original —
  // exactly the shape this test drives under TSan: writers keep minting
  // merged copies and observing them, readers keep polling cancelled() on
  // the shared base, and one thread finally fires requestCancel().
  FakeClock clock(50.0);
  CancelToken base{Deadline::after(1000.0, clock)};
  std::atomic<bool> stop{false};
  std::atomic<int> sawCancel{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t]() {
      while (!stop.load(std::memory_order_acquire)) {
        // Each "retry attempt" layers its own budget onto the caller token.
        const CancelToken attempt =
            base.withDeadline(Deadline::after(1.0 + t, clock));
        if (attempt.cancelled()) {
          sawCancel.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    });
  }
  std::thread poller([&]() {
    while (!base.cancelled()) std::this_thread::yield();
  });
  base.requestCancel();
  poller.join();
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  EXPECT_TRUE(base.cancelled());
}

}  // namespace
}  // namespace pushpart
