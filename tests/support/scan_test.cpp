#include "support/scan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace pushpart {
namespace {

TEST(ScanTest, EmptyAndAllZero) {
  const std::vector<std::int32_t> empty;
  EXPECT_EQ(firstNonZero(empty), 0u);
  EXPECT_EQ(lastNonZero(empty), 0u);
  const std::vector<std::int32_t> zeros(37, 0);
  EXPECT_EQ(firstNonZero(zeros), zeros.size());
  EXPECT_EQ(lastNonZero(zeros), zeros.size());
}

TEST(ScanTest, FindsEndpointsAcrossBlockBoundaries) {
  // Sizes around the 8-wide block edges, with the hit at every position.
  for (std::size_t size : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 33u}) {
    for (std::size_t pos = 0; pos < size; ++pos) {
      std::vector<std::int32_t> v(size, 0);
      v[pos] = 3;
      EXPECT_EQ(firstNonZero(v), pos) << "size " << size;
      EXPECT_EQ(lastNonZero(v), pos) << "size " << size;
    }
  }
}

TEST(ScanTest, FirstAndLastDifferWithMultipleHits) {
  std::vector<std::int32_t> v(40, 0);
  v[5] = 1;
  v[11] = 2;
  v[31] = 7;
  EXPECT_EQ(firstNonZero(v), 5u);
  EXPECT_EQ(lastNonZero(v), 31u);
}

TEST(ScanTest, DenseVectorHitsEnds) {
  const std::vector<std::int32_t> v(24, 9);
  EXPECT_EQ(firstNonZero(v), 0u);
  EXPECT_EQ(lastNonZero(v), 23u);
}

}  // namespace
}  // namespace pushpart
