#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"

namespace pushpart {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.addRow({"x", "1"});
  t.addRow({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header row, rule, two data rows.
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("x           1"), std::string::npos);
  EXPECT_NE(out.find("longer     22"), std::string::npos);
}

TEST(TableTest, NumericRowHelper) {
  Table t({"label", "a", "b"});
  t.addRow("row1", {1.5, 2.0});
  EXPECT_EQ(t.rows(), 1u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.5"), std::string::npos);
}

TEST(TableTest, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"just-one"}), CheckError);
}

TEST(TableTest, EmptyHeaderRejected) {
  EXPECT_THROW(Table(std::vector<std::string>{}), CheckError);
}

TEST(TableTest, RuleSpansAllColumns) {
  Table t({"ab", "cd"});
  t.addRow({"1", "2"});
  std::ostringstream os;
  t.print(os);
  // Rule length = 2 + 2 (widths) + 2 (gutter) = 6 dashes.
  EXPECT_NE(os.str().find("------"), std::string::npos);
}

}  // namespace
}  // namespace pushpart
