// The acceptance-criterion test: the exhaustive small-N oracle and the DFA
// must agree on the optimal VoC across the ratio set {2:1:1, 3:1:1, 5:2:1,
// 10:3:1}. Any disagreement arrives here already shrunk to a minimal
// replayable case with a dumped .pp artifact, and the assertion message
// carries that artifact's path.
#include <gtest/gtest.h>

#include <filesystem>

#include "verify/suite.hpp"

namespace pushpart {
namespace {

class DifferentialTest : public ::testing::Test {
 protected:
  static const VerifySuiteReport& report() {
    static const VerifySuiteReport r = [] {
      VerifySuiteOptions options;
      options.artifactDir = ::testing::TempDir() + "/pushpart_differential";
      std::filesystem::remove_all(options.artifactDir);
      return runVerifySuite(options);
    }();
    return r;
  }
};

TEST_F(DifferentialTest, OracleAndDfaAgreeAcrossTheAcceptanceRatios) {
  for (const DifferentialOutcome& d : report().differentials) {
    EXPECT_TRUE(d.agreed)
        << "n=" << d.n << " ratio=" << d.ratio.str() << " ["
        << smallNOracleTierName(d.tier) << "] oracle=" << d.oracleMinVoc
        << " dfa=" << d.dfaBestVoc << " candidates=" << d.candidateBestVoc
        << (d.detail.empty() ? "" : "\n  " + d.detail);
  }
}

TEST_F(DifferentialTest, SweepCoversEveryAcceptanceRatioExhaustively) {
  // Each acceptance ratio must be probed on at least one tier-kExhaustive
  // grid — otherwise "DFA matches ground truth" was never actually checked.
  for (const Ratio& ratio : {Ratio{2, 1, 1}, Ratio{3, 1, 1}, Ratio{5, 2, 1},
                             Ratio{10, 3, 1}}) {
    bool exhaustivelyProbed = false;
    for (const DifferentialOutcome& d : report().differentials)
      exhaustivelyProbed =
          exhaustivelyProbed || (d.ratio == ratio &&
                                 d.tier == SmallNOracleTier::kExhaustive);
    EXPECT_TRUE(exhaustivelyProbed) << ratio.str();
  }
}

TEST_F(DifferentialTest, CorePropertiesPass) {
  for (const PropertyOutcome& p : report().properties)
    EXPECT_TRUE(p.passed) << p.str();
  EXPECT_TRUE(report().ok()) << report().summary();
}

}  // namespace
}  // namespace pushpart
