#include "verify/shrink.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace pushpart {
namespace {

FailingCase bigCase() {
  FailingCase c;
  c.n = 87;
  c.ratio = Ratio{7.3, 4.1, 1.0};
  c.seed = 12345;
  c.style = 2;
  return c;
}

TEST(ShrinkTest, SizeOnlyFailureShrinksToThreshold) {
  // Fails exactly when n >= 10: the minimum must land on n == 10 with the
  // ratio shrunk all the way down to the degenerate 1:1:1.
  const auto holds = [](const FailingCase& c) { return c.n < 10; };
  const ShrinkResult r = shrinkCase(bigCase(), holds);
  EXPECT_EQ(r.minimal.n, 10);
  EXPECT_EQ(r.minimal.ratio.str(), (Ratio{1, 1, 1}).str());
  EXPECT_GT(r.rounds, 0);
  EXPECT_GT(r.attempts, r.rounds);
}

TEST(ShrinkTest, SeedAndStyleAreNeverShrunk) {
  const auto holds = [](const FailingCase&) { return false; };  // always fails
  const ShrinkResult r = shrinkCase(bigCase(), holds);
  EXPECT_EQ(r.minimal.seed, 12345u);
  EXPECT_EQ(r.minimal.style, 2);
  EXPECT_EQ(r.minimal.n, 3);  // default ShrinkOptions floor
}

TEST(ShrinkTest, RespectsMinNFloor) {
  const auto holds = [](const FailingCase&) { return false; };
  ShrinkOptions options;
  options.minN = 6;
  const ShrinkResult r = shrinkCase(bigCase(), holds, options);
  EXPECT_EQ(r.minimal.n, 6);
}

TEST(ShrinkTest, RatioDependentFailureKeepsTheFailingRatio) {
  // Fails only while the ratio stays lopsided (P_r >= 5); shrinking must not
  // snap to 2:1:1, because that case passes.
  const auto holds = [](const FailingCase& c) { return c.ratio.p < 5.0; };
  const ShrinkResult r = shrinkCase(bigCase(), holds);
  EXPECT_GE(r.minimal.ratio.p, 5.0);
  EXPECT_EQ(r.minimal.n, 3);  // n still shrinks independently
}

TEST(ShrinkTest, PassingInputIsRejected) {
  const auto holds = [](const FailingCase&) { return true; };
  EXPECT_THROW(shrinkCase(bigCase(), holds), CheckError);
}

TEST(ShrinkTest, MinimalCaseIsAFixpoint) {
  const auto holds = [](const FailingCase& c) { return c.n < 7; };
  const ShrinkResult first = shrinkCase(bigCase(), holds);
  const ShrinkResult again = shrinkCase(first.minimal, holds);
  EXPECT_EQ(again.minimal.n, first.minimal.n);
  EXPECT_EQ(again.rounds, 0);
}

}  // namespace
}  // namespace pushpart
