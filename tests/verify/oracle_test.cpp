#include "verify/oracle.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "shapes/candidates.hpp"

namespace pushpart {
namespace {

std::int64_t bestCandidateVoc(int n, const Ratio& ratio) {
  std::int64_t best = -1;
  for (CandidateShape shape : kAllCandidates) {
    if (!candidateFeasible(shape, n, ratio)) continue;
    const std::int64_t voc =
        makeCandidate(shape, n, ratio).volumeOfCommunication();
    if (best < 0 || voc < best) best = voc;
  }
  return best;
}

TEST(SmallNOracleTest, ArrangementCountExactForTinyGrids) {
  // n=3, ratio 7:1:1 -> eR = eS = 1, eP = 7: 9 * 8 = 72 arrangements.
  EXPECT_EQ(arrangementCountCapped(3, Ratio{7, 1, 1}, 1'000'000), 72);
  // n=2, ratio 2:1:1 -> eR = eS = 1: 4 * 3 = 12.
  EXPECT_EQ(arrangementCountCapped(2, Ratio{2, 1, 1}, 1'000'000), 12);
}

TEST(SmallNOracleTest, ArrangementCountSaturatesAtCap) {
  EXPECT_EQ(arrangementCountCapped(5, Ratio{2, 1, 1}, 1000), 1000);
  // The n=18 state space dwarfs any int64 budget; must clamp, not overflow.
  EXPECT_EQ(arrangementCountCapped(18, Ratio{2, 1, 1}, 1'000'000),
            1'000'000);
}

// Ground-truth minima confirmed by an independent naive full enumeration
// (plain recursive placement, no pruning) over the acceptance ratio set.
TEST(SmallNOracleTest, ExhaustiveMinimaMatchIndependentBruteForce) {
  struct Point {
    int n;
    Ratio ratio;
    std::int64_t minVoc;
  };
  const Point points[] = {
      {4, Ratio{2, 1, 1}, 24},  {4, Ratio{3, 1, 1}, 28},
      {4, Ratio{5, 2, 1}, 24},  {4, Ratio{10, 3, 1}, 20},
      {5, Ratio{10, 3, 1}, 35},
  };
  for (const Point& p : points) {
    const SmallNOracleResult r = smallNOptimalVoc(p.n, p.ratio);
    EXPECT_EQ(r.tier, SmallNOracleTier::kExhaustive)
        << "n=" << p.n << " ratio=" << p.ratio.str();
    EXPECT_EQ(r.minVoc, p.minVoc)
        << "n=" << p.n << " ratio=" << p.ratio.str();
  }
}

TEST(SmallNOracleTest, BestPartitionAchievesMinVocWithExactCounts) {
  const Ratio ratio{5, 2, 1};
  const SmallNOracleResult r = smallNOptimalVoc(4, ratio);
  EXPECT_EQ(r.best.volumeOfCommunication(), r.minVoc);
  const auto counts = ratio.elementCounts(4);
  EXPECT_EQ(r.best.count(Proc::R), counts[procSlot(Proc::R)]);
  EXPECT_EQ(r.best.count(Proc::S), counts[procSlot(Proc::S)]);
  EXPECT_EQ(r.best.count(Proc::P), counts[procSlot(Proc::P)]);
  r.best.validateCounters();
}

TEST(SmallNOracleTest, ExhaustiveNeverWorseThanCanonicalCandidates) {
  for (const Ratio& ratio : {Ratio{2, 1, 1}, Ratio{3, 1, 1}, Ratio{5, 2, 1},
                             Ratio{10, 3, 1}}) {
    const SmallNOracleResult r = smallNOptimalVoc(4, ratio);
    ASSERT_EQ(r.tier, SmallNOracleTier::kExhaustive);
    EXPECT_LE(r.minVoc, bestCandidateVoc(4, ratio)) << ratio.str();
  }
}

TEST(SmallNOracleTest, TinyBudgetFallsBackToFamilyTier) {
  SmallNOracleOptions options;
  options.maxExhaustiveStates = 10;  // far below any real state space
  const SmallNOracleResult r = smallNOptimalVoc(4, Ratio{2, 1, 1}, options);
  EXPECT_EQ(r.tier, SmallNOracleTier::kFamily);
  // The family minimum is an upper bound on the true minimum (24) and never
  // worse than the best canonical candidate (the family contains them).
  EXPECT_GE(r.minVoc, 24);
  EXPECT_LE(r.minVoc, bestCandidateVoc(4, Ratio{2, 1, 1}));
  EXPECT_EQ(r.best.volumeOfCommunication(), r.minVoc);
}

TEST(SmallNOracleTest, FamilyTierSelectedAboveBudgetAndBoundsCandidates) {
  // n=5 at 2:1:1 has ~4.8e9 arrangements — over the default budget.
  const SmallNOracleResult r = smallNOptimalVoc(5, Ratio{2, 1, 1});
  EXPECT_EQ(r.tier, SmallNOracleTier::kFamily);
  EXPECT_LE(r.minVoc, bestCandidateVoc(5, Ratio{2, 1, 1}));
  EXPECT_EQ(r.best.volumeOfCommunication(), r.minVoc);
  r.best.validateCounters();
}

TEST(SmallNOracleTest, DegenerateSizeThrows) {
  EXPECT_THROW(smallNOptimalVoc(1, Ratio{2, 1, 1}), std::invalid_argument);
  EXPECT_THROW(smallNOptimalVoc(0, Ratio{2, 1, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace pushpart
