// Regression gate for tests/corpus: every checked-in counterexample file
// must replay cleanly — load, counter consistency, byte-identical serialize
// round-trip, and the Postulate 1 dominance check. A file that classifies
// Unknown is accepted only as a *locked, dominated* state: no push applies
// and reduceToArchetypeA finds a canonical Archetype A shape communicating
// no more — so no corpus file leaves an unexplained Unknown shape, and none
// violates an engine invariant.
#include <gtest/gtest.h>

#include "grid/serialize.hpp"
#include "shapes/archetype.hpp"
#include "shapes/transform.hpp"
#include "verify/invariants.hpp"

#ifndef PUSHPART_CORPUS_DIR
#error "PUSHPART_CORPUS_DIR must point at tests/corpus"
#endif

namespace pushpart {
namespace {

TEST(CorpusTest, CorpusDirectoryHasTheRelocatedCounterexamples) {
  const auto files = corpusFiles(PUSHPART_CORPUS_DIR);
  ASSERT_GE(files.size(), 2u) << "expected the counterexample_*.pp files in "
                              << PUSHPART_CORPUS_DIR;
}

TEST(CorpusTest, EveryCorpusFileReplaysWithoutViolations) {
  for (const std::string& path : corpusFiles(PUSHPART_CORPUS_DIR)) {
    const CheckReport report = replayCorpusFile(path);
    EXPECT_TRUE(report.ok()) << path << ": " << report.str();
  }
}

TEST(CorpusTest, UnknownShapesAreLockedAndReduceToArchetypeA) {
  for (const std::string& path : corpusFiles(PUSHPART_CORPUS_DIR)) {
    const Partition q = loadPartition(path);
    const ArchetypeInfo info = classifyArchetype(q);
    if (info.archetype != Archetype::Unknown) continue;
    const Ratio ratio = inferRatio(q);
    Partition reduced = q;
    const auto reduction = reduceToArchetypeA(reduced, ratio);
    ASSERT_TRUE(reduction.has_value())
        << path << " undercuts every canonical candidate";
    EXPECT_LE(reduction->vocAfter, reduction->vocBefore) << path;
    EXPECT_EQ(classifyArchetype(reduced).archetype, Archetype::A) << path;
  }
}

}  // namespace
}  // namespace pushpart
