#include "verify/harness.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "grid/builder.hpp"
#include "grid/serialize.hpp"
#include "verify/generators.hpp"

namespace pushpart {
namespace {

PropertyOptions tempOptions(const std::string& subdir) {
  PropertyOptions options;
  options.artifactDir = ::testing::TempDir() + "/pushpart_" + subdir;
  std::filesystem::remove_all(options.artifactDir);
  return options;
}

TEST(HarnessTest, PassingPropertyReportsAllIterations) {
  const PropertyOptions options = tempOptions("pass");
  const PropertyOutcome outcome = runProperty(
      "always-ok", options,
      [](const FailingCase&) -> PropertyRun { return {CheckReport{}, {}}; });
  EXPECT_TRUE(outcome.passed);
  EXPECT_EQ(outcome.iterations, options.iterations);
  EXPECT_NE(outcome.str().find("always-ok: ok"), std::string::npos);
  // No artifacts for a passing property.
  EXPECT_FALSE(std::filesystem::exists(options.artifactDir));
}

TEST(HarnessTest, FailureIsShrunkAndDumpedReplayably) {
  const PropertyOptions options = tempOptions("fail");
  // Fails whenever n >= 6, with the generated partition as evidence.
  const auto property = [](const FailingCase& c) -> PropertyRun {
    if (c.n < 6) return {CheckReport{}, {}};
    Rng rng(c.seed);
    CheckReport report;
    report.add("test.size-limit", "n=" + std::to_string(c.n));
    return {report, genPartition(static_cast<GenStyle>(c.style), c.n, c.ratio,
                                 rng)};
  };
  const PropertyOutcome outcome = runProperty("size-limit", options, property);
  ASSERT_FALSE(outcome.passed);
  EXPECT_EQ(outcome.minimal.n, 6);  // shrunk to the threshold
  EXPECT_EQ(outcome.failure.violations[0].property, "test.size-limit");

  // The .pp artifact replays: it is a valid partition of the minimal size.
  ASSERT_FALSE(outcome.artifactPath.empty());
  const Partition dumped = loadPartition(outcome.artifactPath);
  EXPECT_EQ(dumped.n(), outcome.minimal.n);

  // The .case descriptor names the case and the violation.
  ASSERT_FALSE(outcome.casePath.empty());
  std::ifstream in(outcome.casePath);
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("test.size-limit"), std::string::npos);
  EXPECT_NE(text.str().find("seed"), std::string::npos);

  // The failure report names the artifact so a human can find it.
  EXPECT_NE(outcome.str().find(outcome.artifactPath), std::string::npos);
  std::filesystem::remove_all(options.artifactDir);
}

TEST(HarnessTest, DeterministicForAFixedSeed) {
  const auto property = [](const FailingCase& c) -> PropertyRun {
    CheckReport report;
    if (c.n % 2 == 1) report.add("test.odd", c.str());
    return {report, {}};
  };
  const PropertyOptions options = tempOptions("det");
  const PropertyOutcome a = runProperty("odd", options, property);
  const PropertyOutcome b = runProperty("odd", options, property);
  ASSERT_FALSE(a.passed);
  EXPECT_EQ(a.minimal.n, b.minimal.n);
  EXPECT_EQ(a.minimal.seed, b.minimal.seed);
  EXPECT_EQ(a.iterations, b.iterations);
  std::filesystem::remove_all(options.artifactDir);
}

TEST(HarnessTest, RunPropertyOnCaseChecksTheExactCase) {
  const PropertyOptions options = tempOptions("oncase");
  FailingCase c;
  c.n = 9;
  c.ratio = Ratio{5, 2, 1};
  c.seed = 42;
  const PropertyOutcome ok = runPropertyOnCase(
      "fixed-ok", c, options,
      [](const FailingCase&) -> PropertyRun { return {CheckReport{}, {}}; });
  EXPECT_TRUE(ok.passed);
  EXPECT_EQ(ok.iterations, 1);

  const PropertyOutcome bad = runPropertyOnCase(
      "fixed-bad", c, options, [](const FailingCase& fc) -> PropertyRun {
        CheckReport report;
        report.add("test.always", fc.str());
        return {report, {}};
      });
  ASSERT_FALSE(bad.passed);
  EXPECT_EQ(bad.minimal.seed, 42u);            // seed survives shrinking
  EXPECT_EQ(bad.minimal.n, options.minN);      // everything else minimised
  std::filesystem::remove_all(options.artifactDir);
}

}  // namespace
}  // namespace pushpart
