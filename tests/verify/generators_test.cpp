#include "verify/generators.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pushpart {
namespace {

TEST(GeneratorsTest, RatiosAlwaysSatisfyThePaperAssumptions) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Ratio ratio = genRatio(rng);
    EXPECT_TRUE(ratio.valid()) << ratio.str();
  }
}

TEST(GeneratorsTest, SmallNStaysInRangeAndCoversIt) {
  Rng rng(2);
  std::set<int> seen;
  for (int i = 0; i < 300; ++i) {
    const int n = genSmallN(rng, 4, 9);
    EXPECT_GE(n, 4);
    EXPECT_LE(n, 9);
    seen.insert(n);
  }
  EXPECT_EQ(seen.size(), 6u);  // every size in [4, 9] drawn at least once
}

TEST(GeneratorsTest, PartitionsHaveTheRatiosExactCounts) {
  Rng rng(3);
  const Ratio ratio{5, 2, 1};
  const auto expected = ratio.elementCounts(12);
  for (GenStyle style : {GenStyle::kScattered, GenStyle::kClustered,
                         GenStyle::kCandidate, GenStyle::kMutated}) {
    const Partition q = genPartition(style, 12, ratio, rng);
    EXPECT_EQ(q.count(Proc::R), expected[procSlot(Proc::R)])
        << genStyleName(style);
    EXPECT_EQ(q.count(Proc::S), expected[procSlot(Proc::S)])
        << genStyleName(style);
    q.validateCounters();
  }
}

TEST(GeneratorsTest, SameSeedSameStream) {
  Rng a(77), b(77);
  for (int i = 0; i < 20; ++i) {
    const Ratio ra = genRatio(a), rb = genRatio(b);
    EXPECT_EQ(ra.str(), rb.str());
    EXPECT_EQ(genSmallN(a, 3, 30), genSmallN(b, 3, 30));
  }
  const Partition qa = genPartition(GenStyle::kScattered, 10, Ratio{2, 1, 1},
                                    a);
  const Partition qb = genPartition(GenStyle::kScattered, 10, Ratio{2, 1, 1},
                                    b);
  EXPECT_EQ(qa, qb);
}

TEST(GeneratorsTest, PlanRequestsStayInsideTheServingEnvelope) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const PlanRequest req = genPlanRequest(rng);
    EXPECT_GE(req.n, 12);
    EXPECT_TRUE(req.ratio.valid()) << req.ratio.str();
    EXPECT_GE(req.searchRuns, 1);
  }
}

}  // namespace
}  // namespace pushpart
