#include "verify/invariants.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "adapt/estimator.hpp"
#include "dfa/schedule.hpp"
#include "grid/builder.hpp"
#include "shapes/candidates.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

TEST(CheckReportTest, EmptyIsOkAndMergeAccumulates) {
  CheckReport a;
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.str(), "ok");
  a.add("x.first", "one");
  CheckReport b;
  b.add("x.second", "two");
  a.merge(b);
  EXPECT_FALSE(a.ok());
  ASSERT_EQ(a.violations.size(), 2u);
  EXPECT_EQ(a.violations[1].property, "x.second");
  EXPECT_NE(a.str().find("x.first: one"), std::string::npos);
}

TEST(InferRatioTest, RecoversElementCountsOfGeneratingRatio) {
  Rng rng(7);
  for (const Ratio& ratio : {Ratio{2, 1, 1}, Ratio{5, 2, 1},
                             Ratio{10, 3, 1}}) {
    const Partition q = randomPartition(12, ratio, rng);
    const Ratio inferred = inferRatio(q);
    // The inferred ratio need not equal the original numerically, but must
    // reproduce the same element counts — that is what replay cares about.
    EXPECT_EQ(inferred.elementCounts(12), ratio.elementCounts(12))
        << ratio.str() << " vs inferred " << inferred.str();
  }
}

TEST(InferRatioTest, ThrowsWhenASlowProcessorOwnsNothing) {
  const Partition q(6);  // all P
  EXPECT_THROW(inferRatio(q), std::invalid_argument);
}

TEST(RatioIntervalTest, BracketsGeneratingRatioAndPointEstimate) {
  Rng rng(11);
  for (const Ratio& ratio : {Ratio{2, 1, 1}, Ratio{5, 2, 1},
                             Ratio{10, 3, 1}, Ratio{25, 5, 1}}) {
    for (int n : {12, 24, 60}) {
      const Partition q = randomPartition(n, ratio, rng);
      const RatioInterval interval = inferRatioInterval(q);
      // The true generating ratio and the point estimate both lie inside
      // the quantization bounds, and the bounds are ordered.
      EXPECT_TRUE(interval.contains(ratio))
          << ratio.str() << " at n=" << n << " outside ["
          << interval.lo.str() << ", " << interval.hi.str() << "]";
      EXPECT_TRUE(interval.contains(interval.mid));
      EXPECT_LE(interval.lo.p, interval.hi.p);
      EXPECT_LE(interval.lo.r, interval.hi.r);
    }
  }
}

TEST(RatioIntervalTest, ExcludesDecisivelyDifferentRatios) {
  Rng rng(12);
  const Partition q = randomPartition(24, Ratio{5, 2, 1}, rng);
  const RatioInterval interval = inferRatioInterval(q);
  EXPECT_FALSE(interval.contains(Ratio{2, 1, 1}));
  EXPECT_FALSE(interval.contains(Ratio{10, 3, 1}));
  // Scale invariance: containment is judged on the normalized candidate.
  EXPECT_TRUE(interval.contains(Ratio{10, 4, 2}));
}

TEST(RatioIntervalTest, NearTieFlagsIndistinguishableOrderings) {
  Rng rng(13);
  // r == s: the counts cannot certify which slow processor is R, so the r
  // interval must straddle 1.
  const Partition tied = randomPartition(12, Ratio{2, 1, 1}, rng);
  EXPECT_TRUE(inferRatioInterval(tied).nearTie());
  // A decisively ordered ratio at the same n is not a near-tie.
  const Partition apart = randomPartition(12, Ratio{5, 2, 1}, rng);
  EXPECT_FALSE(inferRatioInterval(apart).nearTie());
}

// Cross-check with the adaptive loop's estimator: telemetry generated at the
// partition's own ratio must yield a canonical estimate inside the interval
// the partition's counts pin down.
TEST(RatioIntervalTest, ContainsRatioEstimatorCanonicalEstimate) {
  const Ratio truth{5, 2, 1};
  RatioEstimator estimator;
  for (int phase = 0; phase < 8; ++phase) {
    PhaseSample sample;
    sample.at = phase;
    for (Proc x : kAllProcs) {
      sample.node(x).proc = x;
      sample.node(x).units = static_cast<std::int64_t>(truth.speed(x) * 1e6);
      sample.node(x).busySeconds = 1.0;
    }
    estimator.observe(sample);
  }
  const RatioEstimate estimate = estimator.estimate();
  ASSERT_TRUE(estimate.warmedUp);
  Rng rng(14);
  const Partition q = randomPartition(36, truth, rng);
  EXPECT_TRUE(inferRatioInterval(q).contains(estimate.canonical()));
}

TEST(CheckCountersTest, PassesOnFreshRandomPartition) {
  Rng rng(3);
  const Partition q = randomPartition(10, Ratio{3, 2, 1}, rng);
  EXPECT_TRUE(checkCounters(q).ok());
}

TEST(CheckConservationTest, FlagsChangedCounts) {
  Rng rng(3);
  const Partition before = randomPartition(8, Ratio{2, 1, 1}, rng);
  Partition after = before;
  // Reassign one R cell to P: counts diverge.
  for (int i = 0; i < 8 && after.count(Proc::R) == before.count(Proc::R); ++i)
    for (int j = 0; j < 8; ++j)
      if (after.at(i, j) == Proc::R) {
        after.set(i, j, Proc::P);
        break;
      }
  const CheckReport report = checkConservation(before, after);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].property, "conservation.counts");
}

TEST(CheckPushOutcomeTest, AcceptsARealEnginePush) {
  Rng rng(11);
  Partition q = randomPartition(12, Ratio{3, 1, 1}, rng);
  for (int attempts = 0; attempts < 64; ++attempts) {
    const Partition before = q;
    const PushOutcome outcome =
        tryPush(q, attempts % 2 == 0 ? Proc::R : Proc::S,
                kAllDirections[static_cast<std::size_t>(attempts) %
                               kAllDirections.size()]);
    EXPECT_TRUE(checkPushOutcome(before, q, outcome).ok())
        << checkPushOutcome(before, q, outcome).str();
  }
}

TEST(CheckPushOutcomeTest, FlagsTamperedBookkeeping) {
  Rng rng(11);
  Partition q = randomPartition(12, Ratio{3, 1, 1}, rng);
  Partition before = q;
  PushOutcome outcome;
  while (!outcome.applied) {
    before = q;
    outcome = tryPush(q, Proc::R, Direction::Down);
    if (!outcome.applied) outcome = tryPush(q, Proc::S, Direction::Right);
  }
  PushOutcome tampered = outcome;
  tampered.vocAfter = outcome.vocAfter - 1;  // claims more improvement
  EXPECT_FALSE(checkPushOutcome(before, q, tampered).ok());
}

TEST(CheckPushOutcomeTest, FlagsMutationWithoutApplication) {
  Rng rng(5);
  const Partition before = randomPartition(8, Ratio{2, 1, 1}, rng);
  Partition after = before;
  after.swapCells(0, 0, 7, 7);
  PushOutcome outcome;  // applied = false, yet the grid changed
  EXPECT_FALSE(checkPushOutcome(before, after, outcome).ok());
}

TEST(CheckDfaRunTest, AcceptsACompleteCondensation) {
  Rng rng(23);
  const Partition q0 = randomPartition(16, Ratio{5, 2, 1}, rng);
  const Schedule schedule = Schedule::random(rng);
  const DfaResult result = runDfa(q0, schedule, {});
  const CheckReport report = checkDfaRun(q0, result);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(CheckSerializeRoundTripTest, PassesForArbitraryPartitions) {
  Rng rng(9);
  for (int n : {3, 7, 16}) {
    const Partition q = randomPartition(n, Ratio{2, 1, 1}, rng);
    EXPECT_TRUE(checkSerializeRoundTrip(q).ok()) << "n=" << n;
  }
}

TEST(CheckCondensedStateTest, AcceptsCanonicalCandidates) {
  const Ratio ratio{5, 2, 1};
  for (CandidateShape shape : kAllCandidates) {
    if (!candidateFeasible(shape, 20, ratio)) continue;
    const Partition q = makeCandidate(shape, 20, ratio);
    const CheckReport report = checkCondensedState(q, ratio);
    EXPECT_TRUE(report.ok()) << candidateName(shape) << ": " << report.str();
  }
}

TEST(CheckCondensedStateTest, AcceptsDfaAcceptStates) {
  Rng rng(31);
  const Ratio ratio{3, 1, 1};
  const Partition q0 = randomPartition(14, ratio, rng);
  const DfaResult result = runDfa(q0, Schedule::full(), {});
  const CheckReport report = checkCondensedState(result.final, ratio);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(CheckOracleTierAgreementTest, TiersAgreeOnTypicalRequests) {
  Oracle oracle;
  PlanRequest req;
  req.n = 48;
  req.ratio = Ratio{5, 2, 1};
  req.searchRuns = 2;
  const CheckReport report = checkOracleTierAgreement(oracle, req);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(CheckServeDegradationTest, LadderContractHoldsOnTypicalRequests) {
  OracleOptions options;
  options.breaker.failureThreshold = 0;  // the checker busts deadlines itself
  Oracle oracle(options);
  PlanRequest req;
  req.n = 32;
  req.ratio = Ratio{3, 1, 1};
  req.searchRuns = 2;
  const CheckReport report = checkServeDegradation(oracle, req);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(CheckServeDegradationTest, HoldsAcrossRatiosAndTiersRequested) {
  for (const Ratio& ratio : {Ratio{2, 1, 1}, Ratio{5, 2, 1}, Ratio{10, 3, 1}}) {
    OracleOptions options;
    options.breaker.failureThreshold = 0;
    Oracle oracle(options);
    PlanRequest req;
    req.n = 24;
    req.ratio = ratio;
    req.tier = PlanTier::kFast;  // the checker forces both tiers itself
    req.searchRuns = 3;
    const CheckReport report = checkServeDegradation(oracle, req);
    EXPECT_TRUE(report.ok()) << ratio.str() << ": " << report.str();
  }
}

TEST(CorpusFilesTest, MissingDirectoryYieldsEmptyList) {
  EXPECT_TRUE(corpusFiles("/no/such/dir").empty());
}

}  // namespace
}  // namespace pushpart
