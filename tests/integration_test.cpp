// End-to-end pipeline tests: the full workflow a user of the library (and
// the paper's own methodology) runs — random start → DFA condensation →
// archetype classification → reduction to a canonical Archetype A candidate
// → performance-model ranking → simulated and real execution.
#include <gtest/gtest.h>

#include <tuple>

#include "dfa/batch.hpp"
#include "exec/kij_executor.hpp"
#include "grid/builder.hpp"
#include "model/closed_form.hpp"
#include "model/optimal.hpp"
#include "shapes/transform.hpp"
#include "sim/mmm_sim.hpp"

namespace pushpart {
namespace {

class PipelineTest
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(PipelineTest, SearchClassifyReduceRank) {
  const auto [ratioStr, seed] = GetParam();
  const Ratio ratio = Ratio::parse(ratioStr);
  const int n = 36;

  // 1. Search: random start state condenses.
  Rng rng(seed);
  const Schedule schedule = Schedule::random(rng);
  const DfaResult search =
      runDfa(randomPartition(n, ratio, rng), schedule, {});
  ASSERT_LE(search.vocEnd, search.vocStart);

  // 2. Classify: the condensed shape is one of the paper's archetypes.
  const ArchetypeInfo info = classifyArchetype(search.final);
  ASSERT_NE(info.archetype, Archetype::Unknown) << info.str();

  // 3. Reduce: some canonical Archetype A candidate communicates no more
  //    (Thms 8.2–8.4 made executable).
  Partition reduced = search.final;
  const auto reduction = reduceToArchetypeA(reduced, ratio);
  ASSERT_TRUE(reduction.has_value());
  EXPECT_LE(reduction->vocAfter, search.final.volumeOfCommunication());
  EXPECT_EQ(classifyArchetype(reduced).archetype, Archetype::A);

  // 4. Rank: the model's best candidate is at least as good as the reduced
  //    shape under SCB (comm = VoC·T_send, computation identical).
  Machine machine;
  machine.ratio = ratio;
  const RankedCandidate best = selectOptimal(Algo::kSCB, n, machine);
  EXPECT_LE(best.voc, reduced.volumeOfCommunication());

  // 5. Simulate: the discrete-event run of the winner agrees with its model.
  SimOptions simOpts;
  simOpts.machine = machine;
  const Partition winner = makeCandidate(best.shape, n, ratio);
  const SimResult sim = simulateMMM(Algo::kSCB, winner, simOpts);
  EXPECT_NEAR(sim.execSeconds, best.model.execSeconds,
              best.model.execSeconds * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RatiosAndSeeds, PipelineTest,
    ::testing::Combine(::testing::Values("2:1:1", "4:1:1", "10:1:1", "3:2:1",
                                         "5:4:1"),
                       ::testing::Values(5u, 91u)));

TEST(PipelineTest, ModelSimulatorExecutorAgreeOnCommVolume) {
  // The three substrates must account identical element volumes for the same
  // partition: Eq. 1 (model), element·hops (simulator, fully connected) and
  // the executor's ledger.
  const Ratio ratio{5, 2, 1};
  const int n = 48;
  const Partition q = makeCandidate(CandidateShape::kBlockRectangle, n, ratio);

  const auto voc = q.volumeOfCommunication();

  SimOptions simOpts;
  simOpts.machine.ratio = ratio;
  const SimResult sim = simulateMMM(Algo::kSCB, q, simOpts);
  EXPECT_EQ(sim.network.elementsMoved, voc);

  ExecOptions execOpts;
  execOpts.machine.ratio = ratio;
  execOpts.verify = true;
  const ExecResult run = runParallelMMM(Algo::kSCB, q, execOpts);
  EXPECT_EQ(run.commElements, voc);
  EXPECT_LT(run.maxAbsError, 1e-9);
}

TEST(PipelineTest, BatchSearchNeverBeatsCandidates) {
  // Strong form of the paper's claim: across a batch of searches, the best
  // condensed VoC never undercuts the best canonical candidate's VoC.
  BatchOptions opts;
  opts.n = 32;
  opts.ratio = Ratio{3, 1, 1};
  opts.runs = 16;
  opts.seed = 1234;

  std::int64_t bestSearched = std::numeric_limits<std::int64_t>::max();
  const BatchSummary summary = runBatch(opts, [&](const BatchRun& run) {
    bestSearched = std::min(bestSearched, run.result.vocEnd);
  });
  ASSERT_TRUE(summary.allCompleted());

  std::int64_t bestCandidate = std::numeric_limits<std::int64_t>::max();
  for (CandidateShape shape : kAllCandidates) {
    if (!candidateFeasible(shape, opts.n, opts.ratio)) continue;
    bestCandidate =
        std::min(bestCandidate, makeCandidate(shape, opts.n, opts.ratio)
                                    .volumeOfCommunication());
  }
  EXPECT_LE(bestCandidate, bestSearched);
}

TEST(PipelineTest, ClosedFormPredictsGridWinnerAtScale) {
  // The closed-form crossover (Fig. 13/14) predicts which grid-built shape
  // wins on either side of it.
  const double crossover = squareCornerCrossover(1, 1);  // ≈ 9.66
  const int n = 300;
  for (double p : {crossover * 0.8, crossover * 1.25}) {
    const Ratio ratio{p, 1, 1};
    if (!candidateFeasible(CandidateShape::kSquareCorner, n, ratio)) continue;
    const auto sc = makeCandidate(CandidateShape::kSquareCorner, n, ratio);
    const auto br = makeCandidate(CandidateShape::kBlockRectangle, n, ratio);
    const bool scWinsGrid =
        sc.volumeOfCommunication() < br.volumeOfCommunication();
    EXPECT_EQ(scWinsGrid, p > crossover) << "P_r=" << p;
  }
}

}  // namespace
}  // namespace pushpart
