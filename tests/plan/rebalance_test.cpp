#include "plan/rebalance.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "grid/builder.hpp"
#include "shapes/candidates.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

TEST(RebalanceTest, ConservesEveryCellOfTheDeadProcessor) {
  Rng rng(3);
  const Ratio ratio{3, 2, 1};
  const auto q = randomPartition(18, ratio, rng);
  const auto result = rebalanceOnDeath(q, Proc::R, ratio, 9);

  EXPECT_EQ(result.dead, Proc::R);
  EXPECT_EQ(result.fromPivot, 9);
  EXPECT_EQ(result.after.count(Proc::R), 0);
  EXPECT_EQ(result.reassigned, q.count(Proc::R));
  EXPECT_EQ(result.gained[procSlot(Proc::R)], 0);
  EXPECT_EQ(result.gained[procSlot(Proc::P)] + result.gained[procSlot(Proc::S)],
            result.reassigned);
  EXPECT_EQ(result.after.count(Proc::P),
            q.count(Proc::P) + result.gained[procSlot(Proc::P)]);
  EXPECT_EQ(result.after.count(Proc::S),
            q.count(Proc::S) + result.gained[procSlot(Proc::S)]);
  result.after.validateCounters();
  EXPECT_EQ(result.vocBefore, q.volumeOfCommunication());
  EXPECT_EQ(result.vocAfter, result.after.volumeOfCommunication());
}

TEST(RebalanceTest, SplitsTheLoadInProportionToSurvivorSpeeds) {
  // R dies; P (speed 3) and S (speed 1) survive, so P should absorb ~3/4 of
  // the dead processor's cells (the faster survivor takes the rounding).
  Rng rng(4);
  const Ratio ratio{3, 1, 1};
  const auto q = randomPartition(24, ratio, rng);
  const auto result = rebalanceOnDeath(q, Proc::R, ratio, 0);
  const double shareP =
      static_cast<double>(result.gained[procSlot(Proc::P)]) /
      static_cast<double>(result.reassigned);
  EXPECT_NEAR(shareP, 0.75, 1.0 / static_cast<double>(result.reassigned));
}

TEST(RebalanceTest, EveryProcessorCanDie) {
  Rng rng(5);
  const Ratio ratio{4, 2, 1};
  const auto q = randomPartition(16, ratio, rng);
  for (Proc dead : kAllProcs) {
    const auto result = rebalanceOnDeath(q, dead, ratio, 8);
    EXPECT_EQ(result.after.count(dead), 0) << procName(dead);
    EXPECT_EQ(result.reassigned, q.count(dead)) << procName(dead);
    EXPECT_TRUE(result.deltaPlanVerified) << procName(dead);
  }
}

TEST(RebalanceTest, DeltaPlanCoversExactlyTheFailoverEpoch) {
  Rng rng(6);
  const Ratio ratio{5, 2, 1};
  const auto q = randomPartition(20, ratio, rng);
  for (int fromPivot : {0, 7, 20}) {
    const auto result = rebalanceOnDeath(q, Proc::S, ratio, fromPivot);
    EXPECT_EQ(result.deltaPlan.size(),
              static_cast<std::size_t>(q.n() - fromPivot));
    EXPECT_TRUE(result.deltaPlanVerified);
    // Independent re-check of the emitted schedule.
    EXPECT_TRUE(
        verifyElementPlanRange(result.after, result.deltaPlan, fromPivot));
  }
}

TEST(RebalanceTest, FullEpochPlanMatchesAFreshBuild) {
  const Ratio ratio{5, 2, 1};
  const auto q = makeCandidate(CandidateShape::kSquareCorner, 20, ratio);
  const auto result = rebalanceOnDeath(q, Proc::R, ratio, 0);
  EXPECT_TRUE(verifyElementPlan(result.after, result.deltaPlan));
}

TEST(RebalanceTest, CondensationDoesNotLoseTheQuota) {
  // The Push condensation moves cells around but must preserve per-survivor
  // totals — gained[] is derived from the final shape, not the raw split.
  Rng rng(7);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(22, ratio, rng);
  const auto a = rebalanceOnDeath(q, Proc::P, ratio, 11);
  const auto b = rebalanceOnDeath(q, Proc::P, ratio, 11);
  // Deterministic: same inputs, same failover partition.
  EXPECT_EQ(a.after, b.after);
  EXPECT_EQ(a.vocAfter, b.vocAfter);
}

TEST(RebalanceTest, TwoSurvivorShapeOnlyUsesTwoProcessors) {
  Rng rng(8);
  const Ratio ratio{3, 2, 1};
  const auto q = randomPartition(16, ratio, rng);
  const auto result = rebalanceOnDeath(q, Proc::R, ratio, 4);
  const int n = result.after.n();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      EXPECT_NE(result.after.at(i, j), Proc::R) << "(" << i << "," << j << ")";
}

TEST(RebalanceTest, InvalidArgumentsRejected) {
  Rng rng(9);
  const Ratio ratio{2, 1, 1};
  const auto q = randomPartition(10, ratio, rng);
  EXPECT_THROW(rebalanceOnDeath(q, Proc::R, ratio, -1), CheckError);
  EXPECT_THROW(rebalanceOnDeath(q, Proc::R, ratio, q.n() + 1), CheckError);
  EXPECT_THROW(rebalanceOnDeath(q, Proc::R, Ratio{1, 2, 1}, 0), CheckError);
}

}  // namespace
}  // namespace pushpart
