#include "plan/comm_plan.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "grid/builder.hpp"
#include "shapes/candidates.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

TEST(CommPlanTest, UniformPartitionNeedsNoTransfers) {
  Partition q(6);
  const auto plan = buildElementPlan(q);
  ASSERT_EQ(plan.size(), 6u);
  for (const auto& step : plan) EXPECT_EQ(step.size(), 0u);
  EXPECT_TRUE(verifyElementPlan(q, plan));
}

TEST(CommPlanTest, SingleForeignCellSchedule) {
  // One R cell at (1, 2) in a 4x4 P grid. For pivot k = 2 the A-column
  // contains the R cell: P needs it (P has cells in row 1) and R needs the
  // P-owned cells of column 2 it will multiply against... R owns only C(1,2),
  // needing A(1,k) for all k and B(k,2) for all k.
  Partition q(4);
  q.set(1, 2, Proc::R);
  const auto plan = buildElementPlan(q);
  EXPECT_TRUE(verifyElementPlan(q, plan));

  // Total transfers must equal Eq. 1: row 1 has 2 owners, column 2 has 2
  // owners → VoC = 4 + 4 = 8.
  std::size_t total = 0;
  for (const auto& step : plan) total += step.size();
  EXPECT_EQ(total, 8u);

  // Pivot 2's A-column holds the R→P delivery of element (1,2).
  const auto& step2 = plan[2];
  bool rSendsToP = false;
  for (const auto& t : step2.aColumn)
    rSendsToP |= (t.from == Proc::R && t.to == Proc::P && t.i == 1 && t.j == 2);
  EXPECT_TRUE(rSendsToP);
}

TEST(CommPlanTest, PlanVolumesMatchPairVolumes) {
  Rng rng(12);
  const auto q = randomPartition(20, Ratio{3, 2, 1}, rng);
  const auto plan = buildElementPlan(q);
  EXPECT_EQ(planVolumes(plan), pairVolumes(q));
  std::int64_t total = 0;
  for (const auto& row : planVolumes(plan))
    for (auto v : row) total += v;
  EXPECT_EQ(total, q.volumeOfCommunication());
}

using PlanParam = std::tuple<CandidateShape, const char*>;

class CommPlanCandidateTest : public ::testing::TestWithParam<PlanParam> {};

TEST_P(CommPlanCandidateTest, PlansForCanonicalShapesVerify) {
  const auto [shape, ratioStr] = GetParam();
  const auto ratio = Ratio::parse(ratioStr);
  const int n = 30;
  if (!candidateFeasible(shape, n, ratio)) GTEST_SKIP();
  const auto q = makeCandidate(shape, n, ratio);
  const auto plan = buildElementPlan(q);
  EXPECT_TRUE(verifyElementPlan(q, plan));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CommPlanCandidateTest,
    ::testing::Combine(::testing::ValuesIn(kAllCandidates),
                       ::testing::Values("2:1:1", "5:2:1", "10:1:1")));

TEST(CommPlanTest, RandomPartitionsVerify) {
  Rng rng(13);
  for (int trial = 0; trial < 6; ++trial) {
    const auto q = randomPartition(16, Ratio{4, 2, 1}, rng);
    EXPECT_TRUE(verifyElementPlan(q, buildElementPlan(q)));
  }
}

TEST(CommPlanVerifyTest, CatchesMissingTransfer) {
  Partition q(4);
  q.set(1, 2, Proc::R);
  auto plan = buildElementPlan(q);
  // Drop one delivery: completeness check must fail.
  for (auto& step : plan)
    if (!step.aColumn.empty()) {
      step.aColumn.pop_back();
      break;
    }
  EXPECT_FALSE(verifyElementPlan(q, plan));
}

TEST(CommPlanVerifyTest, CatchesDuplicateTransfer) {
  Partition q(4);
  q.set(1, 2, Proc::R);
  auto plan = buildElementPlan(q);
  for (auto& step : plan)
    if (!step.aColumn.empty()) {
      step.aColumn.push_back(step.aColumn.back());
      break;
    }
  EXPECT_FALSE(verifyElementPlan(q, plan));
}

TEST(CommPlanVerifyTest, CatchesWrongSender) {
  Partition q(4);
  q.set(1, 2, Proc::R);
  auto plan = buildElementPlan(q);
  for (auto& step : plan)
    if (!step.aColumn.empty()) {
      step.aColumn.front().from = Proc::S;  // S does not own that cell
      break;
    }
  EXPECT_FALSE(verifyElementPlan(q, plan));
}

TEST(CommPlanVerifyTest, CatchesUselessDelivery) {
  Partition q(4);
  q.set(1, 2, Proc::R);
  auto plan = buildElementPlan(q);
  // Send something to S, which owns nothing and needs nothing.
  plan[0].aColumn.push_back({0, 0, Proc::P, Proc::S});
  EXPECT_FALSE(verifyElementPlan(q, plan));
}

TEST(CommPlanVerifyTest, CatchesWrongPivotCoordinates) {
  Partition q(4);
  q.set(1, 2, Proc::R);
  auto plan = buildElementPlan(q);
  for (auto& step : plan)
    if (!step.aColumn.empty()) {
      step.aColumn.front().j ^= 1;  // no longer the pivot column
      EXPECT_FALSE(verifyElementPlan(q, plan));
      return;
    }
}

TEST(CommPlanTest, SquareCornerPlanHasNoSlowToSlowTraffic) {
  // R and S share no rows or columns in a Square-Corner partition, so the
  // schedule must contain no R↔S transfer — the property behind its star-
  // topology immunity (bench/topology_star).
  const auto q = makeCandidate(CandidateShape::kSquareCorner, 40, Ratio{8, 1, 1});
  const auto v = planVolumes(buildElementPlan(q));
  EXPECT_EQ(v[procSlot(Proc::R)][procSlot(Proc::S)], 0);
  EXPECT_EQ(v[procSlot(Proc::S)][procSlot(Proc::R)], 0);
}

}  // namespace
}  // namespace pushpart
