#include "plan/comm_plan.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "grid/builder.hpp"
#include "shapes/candidates.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

TEST(CommPlanTest, UniformPartitionNeedsNoTransfers) {
  Partition q(6);
  const auto plan = buildElementPlan(q);
  ASSERT_EQ(plan.size(), 6u);
  for (const auto& step : plan) EXPECT_EQ(step.size(), 0u);
  EXPECT_TRUE(verifyElementPlan(q, plan));
}

TEST(CommPlanTest, SingleForeignCellSchedule) {
  // One R cell at (1, 2) in a 4x4 P grid. For pivot k = 2 the A-column
  // contains the R cell: P needs it (P has cells in row 1) and R needs the
  // P-owned cells of column 2 it will multiply against... R owns only C(1,2),
  // needing A(1,k) for all k and B(k,2) for all k.
  Partition q(4);
  q.set(1, 2, Proc::R);
  const auto plan = buildElementPlan(q);
  EXPECT_TRUE(verifyElementPlan(q, plan));

  // Total transfers must equal Eq. 1: row 1 has 2 owners, column 2 has 2
  // owners → VoC = 4 + 4 = 8.
  std::size_t total = 0;
  for (const auto& step : plan) total += step.size();
  EXPECT_EQ(total, 8u);

  // Pivot 2's A-column holds the R→P delivery of element (1,2).
  const auto& step2 = plan[2];
  bool rSendsToP = false;
  for (const auto& t : step2.aColumn)
    rSendsToP |= (t.from == Proc::R && t.to == Proc::P && t.i == 1 && t.j == 2);
  EXPECT_TRUE(rSendsToP);
}

TEST(CommPlanTest, PlanVolumesMatchPairVolumes) {
  Rng rng(12);
  const auto q = randomPartition(20, Ratio{3, 2, 1}, rng);
  const auto plan = buildElementPlan(q);
  EXPECT_EQ(planVolumes(plan), pairVolumes(q));
  std::int64_t total = 0;
  for (const auto& row : planVolumes(plan))
    for (auto v : row) total += v;
  EXPECT_EQ(total, q.volumeOfCommunication());
}

using PlanParam = std::tuple<CandidateShape, const char*>;

class CommPlanCandidateTest : public ::testing::TestWithParam<PlanParam> {};

TEST_P(CommPlanCandidateTest, PlansForCanonicalShapesVerify) {
  const auto [shape, ratioStr] = GetParam();
  const auto ratio = Ratio::parse(ratioStr);
  const int n = 30;
  if (!candidateFeasible(shape, n, ratio)) GTEST_SKIP();
  const auto q = makeCandidate(shape, n, ratio);
  const auto plan = buildElementPlan(q);
  EXPECT_TRUE(verifyElementPlan(q, plan));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CommPlanCandidateTest,
    ::testing::Combine(::testing::ValuesIn(kAllCandidates),
                       ::testing::Values("2:1:1", "5:2:1", "10:1:1")));

TEST(CommPlanTest, RandomPartitionsVerify) {
  Rng rng(13);
  for (int trial = 0; trial < 6; ++trial) {
    const auto q = randomPartition(16, Ratio{4, 2, 1}, rng);
    EXPECT_TRUE(verifyElementPlan(q, buildElementPlan(q)));
  }
}

TEST(CommPlanVerifyTest, CatchesMissingTransfer) {
  Partition q(4);
  q.set(1, 2, Proc::R);
  auto plan = buildElementPlan(q);
  // Drop one delivery: completeness check must fail.
  for (auto& step : plan)
    if (!step.aColumn.empty()) {
      step.aColumn.pop_back();
      break;
    }
  EXPECT_FALSE(verifyElementPlan(q, plan));
}

TEST(CommPlanVerifyTest, CatchesDuplicateTransfer) {
  Partition q(4);
  q.set(1, 2, Proc::R);
  auto plan = buildElementPlan(q);
  for (auto& step : plan)
    if (!step.aColumn.empty()) {
      step.aColumn.push_back(step.aColumn.back());
      break;
    }
  EXPECT_FALSE(verifyElementPlan(q, plan));
}

TEST(CommPlanVerifyTest, CatchesWrongSender) {
  Partition q(4);
  q.set(1, 2, Proc::R);
  auto plan = buildElementPlan(q);
  for (auto& step : plan)
    if (!step.aColumn.empty()) {
      step.aColumn.front().from = Proc::S;  // S does not own that cell
      break;
    }
  EXPECT_FALSE(verifyElementPlan(q, plan));
}

TEST(CommPlanVerifyTest, CatchesUselessDelivery) {
  Partition q(4);
  q.set(1, 2, Proc::R);
  auto plan = buildElementPlan(q);
  // Send something to S, which owns nothing and needs nothing.
  plan[0].aColumn.push_back({0, 0, Proc::P, Proc::S});
  EXPECT_FALSE(verifyElementPlan(q, plan));
}

TEST(CommPlanVerifyTest, CatchesWrongPivotCoordinates) {
  Partition q(4);
  q.set(1, 2, Proc::R);
  auto plan = buildElementPlan(q);
  for (auto& step : plan)
    if (!step.aColumn.empty()) {
      step.aColumn.front().j ^= 1;  // no longer the pivot column
      EXPECT_FALSE(verifyElementPlan(q, plan));
      return;
    }
}

TEST(CommPlanRangeTest, SuffixPlanVerifiesAtEveryPivot) {
  Rng rng(14);
  const auto q = randomPartition(12, Ratio{3, 2, 1}, rng);
  for (int firstPivot = 0; firstPivot <= q.n(); ++firstPivot) {
    const auto plan = buildElementPlanRange(q, firstPivot);
    EXPECT_EQ(plan.size(), static_cast<std::size_t>(q.n() - firstPivot));
    EXPECT_TRUE(verifyElementPlanRange(q, plan, firstPivot))
        << "firstPivot=" << firstPivot;
  }
}

TEST(CommPlanRangeTest, PivotZeroReproducesTheFullPlan) {
  Rng rng(15);
  const auto q = randomPartition(14, Ratio{4, 2, 1}, rng);
  const auto full = buildElementPlan(q);
  const auto range = buildElementPlanRange(q, 0);
  ASSERT_EQ(full.size(), range.size());
  for (std::size_t k = 0; k < full.size(); ++k) {
    EXPECT_EQ(full[k].pivot, range[k].pivot);
    EXPECT_EQ(full[k].aColumn, range[k].aColumn);
    EXPECT_EQ(full[k].bRow, range[k].bRow);
  }
}

TEST(CommPlanRangeTest, EmptySuffixIsTriviallyComplete) {
  Rng rng(16);
  const auto q = randomPartition(10, Ratio{2, 1, 1}, rng);
  const auto plan = buildElementPlanRange(q, q.n());
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(verifyElementPlanRange(q, plan, q.n()));
}

TEST(CommPlanRangeTest, MismatchedFirstPivotRejected) {
  Rng rng(17);
  const auto q = randomPartition(12, Ratio{3, 1, 1}, rng);
  const auto plan = buildElementPlanRange(q, 6);
  // Off-by-one epochs have the wrong size and the wrong pivot labels.
  EXPECT_FALSE(verifyElementPlanRange(q, plan, 5));
  EXPECT_FALSE(verifyElementPlanRange(q, plan, 7));
  EXPECT_FALSE(verifyElementPlanRange(q, plan, 0));
}

TEST(CommPlanRangeTest, TamperedSuffixPlanRejected) {
  Partition q(6);
  q.set(1, 2, Proc::R);
  q.set(4, 3, Proc::S);
  auto plan = buildElementPlanRange(q, 2);
  ASSERT_TRUE(verifyElementPlanRange(q, plan, 2));
  for (auto& step : plan)
    if (!step.aColumn.empty()) {
      step.aColumn.pop_back();
      break;
    }
  EXPECT_FALSE(verifyElementPlanRange(q, plan, 2));
}

TEST(CommPlanTest, SquareCornerPlanHasNoSlowToSlowTraffic) {
  // R and S share no rows or columns in a Square-Corner partition, so the
  // schedule must contain no R↔S transfer — the property behind its star-
  // topology immunity (bench/topology_star).
  const auto q = makeCandidate(CandidateShape::kSquareCorner, 40, Ratio{8, 1, 1});
  const auto v = planVolumes(buildElementPlan(q));
  EXPECT_EQ(v[procSlot(Proc::R)][procSlot(Proc::S)], 0);
  EXPECT_EQ(v[procSlot(Proc::S)][procSlot(Proc::R)], 0);
}

}  // namespace
}  // namespace pushpart
