// A reproduction finding (EXPERIMENTS.md "Postulate 1, literally"): there
// exist arrangements that no Push can improve — under any legality type and
// any destination assignment — yet that belong to none of the paper's
// archetypes A–D. The construction: a solid full-width band of R with a
// ragged upper boundary whose holes sit only in P-covered columns, beneath
// an S block whose columns contain no P at all. Every edge clean would hand
// vacated cells to P inside pure-R rows or P-free columns, strictly raising
// VoC, so the transactional engine (correctly) refuses every push.
//
// Such states are reachable from *clustered* random starts (the fuzzer finds
// them); the paper's experimental protocol used scattered starts only, which
// is consistent with it never observing one. Crucially the weaker — and for
// the paper's conclusions sufficient — form of Postulate 1 survives: every
// such locked state is still dominated (VoC-wise) by a canonical Archetype A
// candidate, which this test also verifies.
#include <gtest/gtest.h>

#include "grid/builder.hpp"
#include "push/beautify.hpp"
#include "push/push.hpp"
#include "shapes/archetype.hpp"
#include "shapes/transform.hpp"

namespace pushpart {
namespace {

/// Builds the locked family at n = 16: S = rows [0,10) × cols [6,12);
/// R = rows [12,16) full width, plus ragged rows 10–11 that fully cover S's
/// columns but have holes only where P already lives.
Partition lockedState() {
  Partition q(16, Proc::P);
  for (int i = 0; i < 10; ++i)
    for (int j = 6; j < 12; ++j) q.set(i, j, Proc::S);
  for (int i = 12; i < 16; ++i)
    for (int j = 0; j < 16; ++j) q.set(i, j, Proc::R);
  for (int j = 5; j < 13; ++j) q.set(10, j, Proc::R);   // row 10: cols 5..12
  for (int j = 4; j < 14; ++j) q.set(11, j, Proc::R);   // row 11: cols 4..13
  return q;
}

TEST(LockedStateTest, NoPushApplies) {
  const Partition q = lockedState();
  for (Proc active : kSlowProcs) {
    EXPECT_FALSE(pushAvailable(q, active, kAllDirections))
        << procName(active);
  }
  EXPECT_TRUE(fullyCondensed(q));
}

TEST(LockedStateTest, BeautifyCannotImproveIt) {
  Partition q = lockedState();
  const auto original = q;
  const auto result = beautify(q);
  EXPECT_EQ(result.pushesApplied, 0);
  EXPECT_EQ(result.vocBefore, result.vocAfter);
  // Compaction may legally re-arrange at equal VoC; the volume must not
  // change either way.
  EXPECT_EQ(q.volumeOfCommunication(), original.volumeOfCommunication());
}

TEST(LockedStateTest, IsOutsideTheFourArchetypes) {
  const Partition q = lockedState();
  const auto info = classifyArchetype(q);
  EXPECT_EQ(info.archetype, Archetype::Unknown) << info.str();
  // The blocker anatomy: R is one connected piece but has two ragged rows.
  EXPECT_FALSE(info.rRectangular);
  EXPECT_EQ(info.rComponents, 1);
}

TEST(LockedStateTest, CanonicalCandidatesStillDominate) {
  // The form of Postulate 1 the paper's conclusions actually need: nothing
  // the Push search can ever output communicates less than the best
  // canonical Archetype A candidate.
  Partition q = lockedState();
  const double eS = static_cast<double>(q.count(Proc::S));
  const Ratio ratio{static_cast<double>(q.count(Proc::P)) / eS,
                    static_cast<double>(q.count(Proc::R)) / eS, 1.0};
  ASSERT_TRUE(ratio.valid());
  const auto before = q.volumeOfCommunication();
  const auto reduction = reduceToArchetypeA(q, ratio);
  ASSERT_TRUE(reduction.has_value());
  EXPECT_LT(reduction->vocAfter, before);  // strictly better here
  EXPECT_EQ(classifyArchetype(q).archetype, Archetype::A);
}

TEST(LockedStateTest, EveryEdgeCleanWouldRaiseVoC) {
  // Document *why* it is locked: manually simulate the four edge cleans and
  // confirm each would increase VoC no matter where the elements land.
  const Partition q = lockedState();
  // Cleaning row 10 (Push Down): vacated cells hand P to S's columns 6..11,
  // which contain no P anywhere (+6 columns); at most row 10 itself and the
  // filled lines improve (−1 row, holes cannot complete row 11).
  int pFreeCols = 0;
  for (int j = 6; j < 12; ++j)
    if (q.colCount(Proc::P, j) == 0) ++pFreeCols;
  EXPECT_EQ(pFreeCols, 6);
  // Cleaning the bottom row (Push Up) needs 16 destinations; only the ragged
  // holes are available.
  int holes = 0;
  const Rect r = q.enclosingRect(Proc::R);
  for (int i = r.rowBegin; i < r.rowEnd; ++i)
    for (int j = r.colBegin; j < r.colEnd; ++j)
      if (q.at(i, j) == Proc::P) ++holes;
  EXPECT_LT(holes, q.n());
}

}  // namespace
}  // namespace pushpart
