#include <gtest/gtest.h>

#include "grid/builder.hpp"
#include "push/beautify.hpp"
#include "shapes/corners.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

TEST(CompactRegionTest, FillsInteriorHoles) {
  // R is a block with two interior P holes whose rows/columns already carry
  // P elsewhere — VoC-neutral holes the pushes cannot clean.
  auto q = fromAscii(
      "PPPPPP\n"
      "PRRRPP\n"
      "PRPRPP\n"
      "PRRPPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  const auto voc = q.volumeOfCommunication();
  EXPECT_TRUE(compactRegion(q, Proc::R));
  EXPECT_LE(q.volumeOfCommunication(), voc);
  EXPECT_TRUE(isAsymptoticallyRectangular(q, Proc::R));
  EXPECT_EQ(q.count(Proc::R), 7);
  q.validateCounters();
}

TEST(CompactRegionTest, NoOpOnSolidRectangle) {
  auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "PPPP\n"
      "PPPP\n");
  const auto original = q;
  EXPECT_FALSE(compactRegion(q, Proc::R));
  EXPECT_EQ(q, original);
}

TEST(CompactRegionTest, NoOpOnEmptyProcessor) {
  Partition q(5);
  EXPECT_FALSE(compactRegion(q, Proc::S));
}

TEST(CompactRegionTest, RefusesToDisplaceOtherSlowProcessor) {
  // S sits inside R's enclosing rectangle; compaction must not displace it
  // (whole-rect layouts claim S cells → rejected; the corner-box layouts
  // collide with S in every corner too for this tight arrangement).
  auto q = fromAscii(
      "RRRR\n"
      "RSSR\n"
      "RSSR\n"
      "RRRR\n");
  const auto original = q;
  EXPECT_FALSE(compactRegion(q, Proc::R));
  EXPECT_EQ(q, original);
}

TEST(CompactRegionTest, FullWidthRegionCompactsColumnwise) {
  // R spans the full matrix width; a partial top row would newly dirty that
  // row with P, so the admissible layout must end in a partial column.
  auto q = fromAscii(
      "RRRRRR\n"
      "RRPRRR\n"
      "RRRRPR\n"
      "PPPPPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  const auto voc = q.volumeOfCommunication();
  EXPECT_TRUE(compactRegion(q, Proc::R));
  // Filling the holes can even improve VoC here (the holes' rows carried P
  // only because of them); it must never worsen it.
  EXPECT_LE(q.volumeOfCommunication(), voc);
  EXPECT_TRUE(isAsymptoticallyRectangular(q, Proc::R));
  // Every row of the band must still contain R (no new P-dirtied row).
  for (int i = 0; i < 3; ++i) EXPECT_GT(q.rowCount(Proc::R, i), 0);
}

TEST(CompactRegionTest, FragmentedStripesReanchorToBox) {
  // Two stripes separated by untouched columns: the whole-rect layouts would
  // dirty the gap columns, but a rowsUsed x colsUsed box preserves the line
  // footprint exactly.
  auto q = fromAscii(
      "PPPPPPPP\n"
      "PSSPPSSP\n"
      "PSSPPSSP\n"
      "PSSPPSSP\n"
      "PSSPPSSP\n"
      "PPPPPPPP\n"
      "PPPPPPPP\n"
      "PPPPPPPP\n");
  const auto voc = q.volumeOfCommunication();
  ASSERT_TRUE(compactRegion(q, Proc::S));
  EXPECT_LE(q.volumeOfCommunication(), voc);
  EXPECT_EQ(connectedComponents(q, Proc::S), 1);
  EXPECT_TRUE(isAsymptoticallyRectangular(q, Proc::S));
  EXPECT_EQ(q.count(Proc::S), 16);
  q.validateCounters();
}

TEST(CompactRegionTest, IdempotentAfterSuccess) {
  auto q = fromAscii(
      "PPPPPP\n"
      "PRRRPP\n"
      "PRPRPP\n"
      "PRRPPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  ASSERT_TRUE(compactRegion(q, Proc::R));
  const auto settled = q;
  EXPECT_FALSE(compactRegion(q, Proc::R));
  EXPECT_EQ(q, settled);
}

TEST(CompactRegionTest, NeverWorsensVoCOnRandomShapes) {
  Rng rng(64);
  for (int trial = 0; trial < 20; ++trial) {
    auto q = randomClusteredPartition(24, Ratio{4, 2, 1}, rng);
    const auto voc = q.volumeOfCommunication();
    const auto counts = Ratio{4, 2, 1}.elementCounts(24);
    compactRegion(q, Proc::R);
    compactRegion(q, Proc::S);
    EXPECT_LE(q.volumeOfCommunication(), voc);
    for (Proc x : kAllProcs) EXPECT_EQ(q.count(x), counts[procSlot(x)]);
    q.validateCounters();
  }
}

}  // namespace
}  // namespace pushpart
