#include "push/oriented.hpp"

#include <gtest/gtest.h>

#include "grid/builder.hpp"

namespace pushpart {
namespace {

// A fixed 4x4 grid for coordinate-mapping checks:
//   row0: P R P P
//   row1: P P P P
//   row2: P P S P
//   row3: P P P P
Partition makeGrid() {
  return fromAscii(
      "PRPP\n"
      "PPPP\n"
      "PPSP\n"
      "PPPP\n");
}

TEST(OrientedGridTest, DownIsIdentity) {
  auto q = makeGrid();
  OrientedGrid v(q, Direction::Down);
  EXPECT_EQ(v.at(0, 1), Proc::R);
  EXPECT_EQ(v.at(2, 2), Proc::S);
  EXPECT_EQ(v.rect(Proc::R), (Rect{0, 1, 1, 2}));
}

TEST(OrientedGridTest, UpFlipsRows) {
  auto q = makeGrid();
  OrientedGrid v(q, Direction::Up);
  // Physical row 0 becomes logical row 3.
  EXPECT_EQ(v.at(3, 1), Proc::R);
  EXPECT_EQ(v.at(1, 2), Proc::S);
  EXPECT_EQ(v.rect(Proc::R), (Rect{3, 4, 1, 2}));
  EXPECT_EQ(v.rect(Proc::S), (Rect{1, 2, 2, 3}));
}

TEST(OrientedGridTest, RightTransposes) {
  auto q = makeGrid();
  OrientedGrid v(q, Direction::Right);
  // Logical (r, c) = physical (c, r): R at physical (0,1) → logical (1,0).
  EXPECT_EQ(v.at(1, 0), Proc::R);
  EXPECT_EQ(v.at(2, 2), Proc::S);
  EXPECT_EQ(v.rect(Proc::R), (Rect{1, 2, 0, 1}));
}

TEST(OrientedGridTest, LeftTransposesAndFlips) {
  auto q = makeGrid();
  OrientedGrid v(q, Direction::Left);
  // Logical (r, c) = physical (c, n-1-r): R at physical (0,1) → r=2, c=0.
  EXPECT_EQ(v.at(2, 0), Proc::R);
  // S at physical (2,2) → r = n-1-2 = 1, c = 2.
  EXPECT_EQ(v.at(1, 2), Proc::S);
  EXPECT_EQ(v.rect(Proc::R), (Rect{2, 3, 0, 1}));
}

TEST(OrientedGridTest, RowColHasRespectsOrientation) {
  auto q = makeGrid();
  {
    OrientedGrid v(q, Direction::Right);
    // Logical row r == physical column r.
    EXPECT_TRUE(v.rowHas(Proc::R, 1));   // physical col 1 has R
    EXPECT_FALSE(v.rowHas(Proc::R, 0));
    EXPECT_TRUE(v.colHas(Proc::R, 0));   // physical row 0 has R
    EXPECT_FALSE(v.colHas(Proc::R, 1));
  }
  {
    OrientedGrid v(q, Direction::Up);
    EXPECT_TRUE(v.rowHas(Proc::S, 1));   // physical row 2 → logical 1
    EXPECT_TRUE(v.colHas(Proc::S, 2));
  }
}

TEST(OrientedGridTest, SetWritesThroughAndRecordsUndo) {
  auto q = makeGrid();
  std::vector<CellUndo> undo;
  OrientedGrid v(q, Direction::Up);
  v.set(3, 1, Proc::S, undo);  // physical (0,1), previously R
  EXPECT_EQ(q.at(0, 1), Proc::S);
  ASSERT_EQ(undo.size(), 1u);
  EXPECT_EQ(undo[0].i, 0);
  EXPECT_EQ(undo[0].j, 1);
  EXPECT_EQ(undo[0].previous, Proc::R);
}

TEST(OrientedGridTest, SetSameOwnerRecordsNothing) {
  auto q = makeGrid();
  std::vector<CellUndo> undo;
  OrientedGrid v(q, Direction::Down);
  v.set(0, 1, Proc::R, undo);
  EXPECT_TRUE(undo.empty());
}

TEST(OrientedGridTest, RollbackRestoresExactState) {
  auto q = makeGrid();
  const auto original = q;
  std::vector<CellUndo> undo;
  OrientedGrid v(q, Direction::Left);
  v.set(0, 0, Proc::R, undo);
  v.set(1, 2, Proc::P, undo);
  v.set(3, 3, Proc::S, undo);
  EXPECT_FALSE(q == original);
  rollback(q, undo);
  EXPECT_EQ(q, original);
  q.validateCounters();
}

TEST(OrientedGridTest, EmptyRectStaysEmptyInAllOrientations) {
  Partition q(4);  // all P, no R anywhere
  for (Direction d : kAllDirections) {
    OrientedGrid v(q, d);
    EXPECT_TRUE(v.rect(Proc::R).isEmpty()) << directionName(d);
  }
}

TEST(OrientedGridTest, AllOrientationsCoverSameCells) {
  // Property: for every orientation, the multiset of owners over logical
  // coordinates equals the physical multiset.
  auto q = makeGrid();
  for (Direction d : kAllDirections) {
    OrientedGrid v(q, d);
    int r = 0, s = 0, p = 0;
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) {
        switch (v.at(i, j)) {
          case Proc::R: ++r; break;
          case Proc::S: ++s; break;
          case Proc::P: ++p; break;
        }
      }
    EXPECT_EQ(r, 1) << directionName(d);
    EXPECT_EQ(s, 1) << directionName(d);
    EXPECT_EQ(p, 14) << directionName(d);
  }
}

}  // namespace
}  // namespace pushpart
