#include "push/push.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "grid/builder.hpp"
#include "grid/metrics.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

// ---------------------------------------------------------------------------
// Directed examples
// ---------------------------------------------------------------------------

TEST(PushTest, SimpleDownPushCleansTopRow) {
  // R occupies a 3-row column plus a stray edge element; both top-row
  // elements can drop into interior P cells, strictly reducing VoC.
  auto q = fromAscii(
      "RRPP\n"
      "RPPP\n"
      "RPPP\n"
      "PPPP\n");
  const auto before = q.volumeOfCommunication();
  const auto out = tryPush(q, Proc::R, Direction::Down);
  ASSERT_TRUE(out.applied);
  EXPECT_LT(q.volumeOfCommunication(), before);
  EXPECT_EQ(out.vocAfter, q.volumeOfCommunication());
  // Top row of R's old enclosing rectangle is clean of R.
  EXPECT_EQ(q.rowCount(Proc::R, 0), 0);
  // Counts conserved.
  EXPECT_EQ(q.count(Proc::R), 4);
  q.validateCounters();
}

TEST(PushTest, RectangleIsFixedPoint) {
  // A processor already forming a solid rectangle cannot be pushed in any
  // direction: there is no interior non-R cell inside its enclosing rect.
  auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "PPPP\n"
      "PPPP\n");
  for (Direction d : kAllDirections) {
    const auto out = tryPush(q, Proc::R, d);
    EXPECT_FALSE(out.applied) << directionName(d);
  }
}

TEST(PushTest, SingleRowCannotBePushedVertically) {
  auto q = fromAscii(
      "PPPP\n"
      "RRRP\n"
      "PPPP\n"
      "PPPP\n");
  EXPECT_FALSE(tryPush(q, Proc::R, Direction::Down).applied);
  EXPECT_FALSE(tryPush(q, Proc::R, Direction::Up).applied);
}

TEST(PushTest, SingleColumnCannotBePushedHorizontally) {
  auto q = fromAscii(
      "PRPP\n"
      "PRPP\n"
      "PRPP\n"
      "PPPP\n");
  EXPECT_FALSE(tryPush(q, Proc::R, Direction::Left).applied);
  EXPECT_FALSE(tryPush(q, Proc::R, Direction::Right).applied);
}

TEST(PushTest, FailedPushLeavesPartitionUntouched) {
  auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "PPPP\n"
      "PPPP\n");
  const auto original = q;
  for (Direction d : kAllDirections) {
    (void)tryPush(q, Proc::R, d);
    EXPECT_EQ(q, original) << directionName(d);
  }
}

TEST(PushTest, ActiveProcessorPIsRejected) {
  Partition q(4);
  EXPECT_THROW(tryPush(q, Proc::P, Direction::Down), CheckError);
}

TEST(PushTest, UpPushMirrorsDownPush) {
  auto down = fromAscii(
      "RRPP\n"
      "RPPP\n"
      "RPPP\n"
      "PPPP\n");
  // Vertical mirror of the same shape.
  auto up = fromAscii(
      "PPPP\n"
      "RPPP\n"
      "RPPP\n"
      "RRPP\n");
  const auto outDown = tryPush(down, Proc::R, Direction::Down);
  const auto outUp = tryPush(up, Proc::R, Direction::Up);
  ASSERT_TRUE(outDown.applied);
  ASSERT_TRUE(outUp.applied);
  EXPECT_EQ(outDown.vocAfter, outUp.vocAfter);
  EXPECT_EQ(outDown.elementsMoved, outUp.elementsMoved);
}

TEST(PushTest, LeftRightPushMirrorsVertical) {
  auto right = fromAscii(
      "RRRP\n"
      "RPPP\n"
      "PPPP\n"
      "PPPP\n");
  const auto out = tryPush(right, Proc::R, Direction::Right);
  ASSERT_TRUE(out.applied);
  // Left column of R's old rect must now be clean of R.
  EXPECT_EQ(right.colCount(Proc::R, 0), 0);
}

TEST(PushTest, DisplacedOwnerReceivesVacatedCell) {
  // When R's edge element moves down, the displaced owner (P here) must
  // receive exactly the vacated cell: counts stay fixed.
  auto q = fromAscii(
      "PRRP\n"
      "PRPP\n"
      "PRPP\n"
      "PPPP\n");
  const auto pBefore = q.count(Proc::P);
  const auto out = tryPush(q, Proc::R, Direction::Down);
  ASSERT_TRUE(out.applied);
  EXPECT_EQ(q.count(Proc::P), pBefore);
  EXPECT_EQ(q.count(Proc::R), 4);
}

TEST(PushTest, ThreeProcPushRespectsSRectangle) {
  // S sits below R; pushing R down may hand cells to S only without growing
  // S's enclosing rectangle.
  auto q = fromAscii(
      "PRRPPP\n"
      "PRRPPP\n"
      "PRSSPP\n"
      "PPSSPP\n"
      "PPPPPP\n"
      "PPPPPP\n");
  const Rect sBefore = q.enclosingRect(Proc::S);
  const auto out = tryPush(q, Proc::R, Direction::Down);
  if (out.applied) {
    EXPECT_TRUE(sBefore.contains(q.enclosingRect(Proc::S)));
    EXPECT_LE(q.volumeOfCommunication(), out.vocBefore);
  }
}

TEST(PushTest, OutcomeReportsMetadata) {
  auto q = fromAscii(
      "RRPP\n"
      "RPPP\n"
      "RPPP\n"
      "PPPP\n");
  const auto out = tryPush(q, Proc::R, Direction::Down);
  ASSERT_TRUE(out.applied);
  EXPECT_EQ(out.active, Proc::R);
  EXPECT_EQ(out.direction, Direction::Down);
  EXPECT_EQ(out.elementsMoved, 2);
  EXPECT_TRUE(out.improvedVoC());
}

TEST(PushTest, StrictOnlyOptionsSkipEqualVoCPushes) {
  // Construct a state where only a VoC-preserving (Type 5/6) push exists:
  // R is a 2x2 square plus nothing else — no push at all. Then check a case
  // where an equal push would apply but strict mode refuses.
  auto q = fromAscii(
      "PPPP\n"
      "RRRR\n"
      "RRPP\n"
      "PPPP\n");
  Partition strictCopy = q;
  const PushOptions strictOnly{.allowEqualVoC = false};
  const auto strictOut = tryPush(strictCopy, Proc::R, Direction::Down, strictOnly);
  const auto anyOut = tryPush(q, Proc::R, Direction::Down);
  if (anyOut.applied && !strictOut.applied) {
    EXPECT_EQ(anyOut.vocBefore, anyOut.vocAfter);
  }
  if (strictOut.applied) {
    EXPECT_LT(strictOut.vocAfter, strictOut.vocBefore);
  }
}

TEST(PushAvailableTest, DoesNotMutate) {
  auto q = fromAscii(
      "RRPP\n"
      "RPPP\n"
      "RPPP\n"
      "PPPP\n");
  const auto original = q;
  EXPECT_TRUE(pushAvailable(q, Proc::R, kAllDirections));
  EXPECT_EQ(q, original);
}

TEST(PushAvailableTest, FalseForRectangles) {
  auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "PPSS\n"
      "PPSS\n");
  EXPECT_FALSE(pushAvailable(q, Proc::R, kAllDirections));
  EXPECT_FALSE(pushAvailable(q, Proc::S, kAllDirections));
}

// ---------------------------------------------------------------------------
// Property tests: the paper's Push guarantees on randomized partitions
// ---------------------------------------------------------------------------

using PushPropParam = std::tuple<int, const char*, std::uint64_t>;

class PushPropertyTest : public ::testing::TestWithParam<PushPropParam> {};

TEST_P(PushPropertyTest, PushNeverIncreasesVoCNorGrowsRects) {
  const auto [n, ratioStr, seed] = GetParam();
  const auto ratio = Ratio::parse(ratioStr);
  Rng rng(seed);
  auto q = randomPartition(n, ratio, rng);
  const auto counts0 = ratio.elementCounts(n);

  // Drive many random pushes; after each applied push re-check invariants.
  for (int step = 0; step < 300; ++step) {
    const Proc active = kSlowProcs[rng.below(2)];
    const Direction dir = kAllDirections[rng.below(4)];
    const auto vocBefore = q.volumeOfCommunication();
    std::array<Rect, kNumProcs> rectBefore;
    for (Proc x : kAllProcs) rectBefore[procSlot(x)] = q.enclosingRect(x);

    const auto out = tryPush(q, active, dir);
    ASSERT_LE(q.volumeOfCommunication(), vocBefore);
    if (out.applied) {
      // The slow processors' rectangles never grow; P's box is deliberately
      // unconstrained (DESIGN.md deviation 6) — only its count is conserved.
      for (Proc x : kSlowProcs) {
        ASSERT_TRUE(rectBefore[procSlot(x)].contains(q.enclosingRect(x)))
            << "rect of " << procName(x) << " grew";
      }
      for (Proc x : kAllProcs) ASSERT_EQ(q.count(x), counts0[procSlot(x)]);
    } else {
      ASSERT_EQ(q.volumeOfCommunication(), vocBefore);
    }
  }
  q.validateCounters();
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, PushPropertyTest,
    ::testing::Combine(::testing::Values(12, 20, 35),
                       ::testing::Values("2:1:1", "5:2:1", "10:1:1", "2:2:1",
                                         "5:4:1"),
                       ::testing::Values(7u, 1234u)));

TEST(PushSequenceTest, RepeatedPushesReachFixedPointOnSmallGrid) {
  Rng rng(99);
  auto q = randomPartition(15, Ratio{3, 1, 1}, rng);
  // Strict pushes must terminate: VoC is a decreasing non-negative integer.
  const PushOptions strictOnly{.allowEqualVoC = false};
  int guard = 0;
  bool any = true;
  while (any && guard < 100000) {
    any = false;
    for (Proc active : kSlowProcs)
      for (Direction d : kAllDirections)
        if (tryPush(q, active, d, strictOnly).applied) {
          any = true;
          ++guard;
        }
  }
  EXPECT_LT(guard, 100000);
  // At the fixed point no strictly-improving push remains.
  for (Proc active : kSlowProcs)
    EXPECT_FALSE(pushAvailable(q, active, kAllDirections, strictOnly));
}

}  // namespace
}  // namespace pushpart
