#include "push/beautify.hpp"

#include <gtest/gtest.h>

#include "grid/builder.hpp"
#include "support/rng.hpp"

namespace pushpart {
namespace {

TEST(BeautifyTest, CondensesScatteredPartition) {
  Rng rng(21);
  auto q = randomPartition(20, Ratio{3, 1, 1}, rng);
  const auto before = q.volumeOfCommunication();
  const auto result = beautify(q);
  EXPECT_EQ(result.vocBefore, before);
  EXPECT_EQ(result.vocAfter, q.volumeOfCommunication());
  EXPECT_LE(result.vocAfter, result.vocBefore);
  EXPECT_GT(result.pushesApplied, 0);
  q.validateCounters();
}

TEST(BeautifyTest, IdempotentOnFixedPoint) {
  Rng rng(22);
  auto q = randomPartition(16, Ratio{2, 1, 1}, rng);
  beautify(q);
  const auto settled = q;
  const auto second = beautify(q);
  EXPECT_EQ(second.pushesApplied, 0);
  EXPECT_EQ(q, settled);
}

TEST(BeautifyTest, NoOpOnRectangularPartition) {
  auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "SSPP\n"
      "SSPP\n");
  const auto original = q;
  const auto result = beautify(q);
  EXPECT_EQ(result.pushesApplied, 0);
  EXPECT_EQ(q, original);
}

TEST(FullyCondensedTest, TrueForCornerSquares) {
  auto q = fromAscii(
      "RRPP\n"
      "RRPP\n"
      "PPSS\n"
      "PPSS\n");
  EXPECT_TRUE(fullyCondensed(q));
}

TEST(FullyCondensedTest, FalseForScatteredStart) {
  Rng rng(23);
  const auto q = randomPartition(18, Ratio{2, 1, 1}, rng);
  EXPECT_FALSE(fullyCondensed(q));
}

TEST(BeautifyTest, PreservesElementCounts) {
  Rng rng(24);
  const Ratio ratio{5, 2, 1};
  auto q = randomPartition(24, ratio, rng);
  const auto want = ratio.elementCounts(24);
  beautify(q);
  for (Proc x : kAllProcs) EXPECT_EQ(q.count(x), want[procSlot(x)]);
}

}  // namespace
}  // namespace pushpart
